let default_belief = 0.4
let belief_weight = 0.6

let tf_part ~tf ~doclen ~avg_doclen =
  if tf <= 0.0 then 0.0
  else
    let ratio = if avg_doclen > 0.0 then doclen /. avg_doclen else 1.0 in
    tf /. (tf +. 0.5 +. (1.5 *. ratio))

let idf_part ~df ~ndocs =
  if df <= 0 || ndocs <= 0 then 0.0
  else
    let n = Float.of_int ndocs in
    let v = log ((n +. 0.5) /. Float.of_int df) /. log (n +. 1.0) in
    Float.max 0.0 v

let belief ~tf ~df ~ndocs ~doclen ~avg_doclen =
  default_belief
  +. (belief_weight *. tf_part ~tf ~doclen ~avg_doclen *. idf_part ~df ~ndocs)

module Combine = struct
  let sum = function
    | [] -> default_belief
    | ps -> List.fold_left ( +. ) 0.0 ps /. Float.of_int (List.length ps)

  let wsum = function
    | [] -> default_belief
    | wps ->
      let wtotal = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 wps in
      if wtotal <= 0.0 then default_belief
      else List.fold_left (fun acc (w, p) -> acc +. (w *. p)) 0.0 wps /. wtotal

  let and_ ps = List.fold_left ( *. ) 1.0 ps

  let or_ ps = 1.0 -. List.fold_left (fun acc p -> acc *. (1.0 -. p)) 1.0 ps

  let not_ p = 1.0 -. p

  let max = function
    | [] -> default_belief
    | ps -> List.fold_left Float.max neg_infinity ps
end
