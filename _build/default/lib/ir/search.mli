(** Ranking: query nets against indexes, and the physical [getbl]
    operator that the CONTREP structure contributes to the kernel. *)

type hit = { doc : int; score : float }

val run : Index.t -> ?limit:int -> Querynet.t -> hit list
(** Rank every indexed document by the query net's belief, descending;
    ties break by document id.  [limit] truncates the result. *)

val run_indexed : Index.t -> ?limit:int -> Querynet.t -> hit list
(** Same contract as {!run}, but candidate documents come from the
    inverted file: only documents containing at least one of the net's
    terms are scored through the oracle — the rest share the
    all-defaults belief.  Equivalent to {!run} (tested), much cheaper
    when query terms are selective. *)

val belief_oracle : Index.t -> doc:int -> string -> float
(** The per-document leaf-belief function {!run} uses (exposed for
    tests and for the thesaurus). *)

val getblnet_pairs :
  space:Space.t ->
  net:Querynet.t ->
  occ_ctx:Mirror_bat.Bat.t ->
  occ_term:Mirror_bat.Bat.t ->
  occ_tf:Mirror_bat.Bat.t ->
  len:Mirror_bat.Bat.t ->
  dom:Mirror_bat.Bat.t ->
  Mirror_bat.Bat.t
(** The physical operator behind the Moa-level [getBLnet]: evaluate a
    full inference-network operator tree per context, producing one
    [(ctx, belief)] row per context in [dom] order.  Leaf beliefs use
    the same statistics and fast paths as {!getbl_pairs}. *)

val getbl_pairs :
  space:Space.t ->
  occ_ctx:Mirror_bat.Bat.t ->
  occ_term:Mirror_bat.Bat.t ->
  occ_tf:Mirror_bat.Bat.t ->
  len:Mirror_bat.Bat.t ->
  dom:Mirror_bat.Bat.t ->
  qlink:Mirror_bat.Bat.t ->
  qval:Mirror_bat.Bat.t ->
  Mirror_bat.Bat.t
(** The physical probabilistic operator behind the Moa-level [getBL]:
    given a CONTREP occurrence decomposition ([occ_oid->ctx],
    [occ_oid->term_string], [occ_oid->tf]), the per-context document
    lengths ([ctx->flt], carried in the representation so that the
    algebra can rebase contexts under joins), the context domain [dom]
    (a [(ctx,ctx)] mirror), and the query as a flattened per-context
    set ([qlink : qelem->ctx], [qval : qelem->str]; a context-constant
    query simply links a copy of its terms to every context), produce
    one [(ctx, belief)] row per context x query term, context-major in
    [dom] order, each context's query terms in [qlink] order.  The
    [space] supplies the collection-global statistics (df, N, average
    length); terms unknown to the space or absent from a context
    contribute the default belief. *)
