(** Collection statistics ("stats" in the paper's queries).

    Every CONTREP field has a statistics space recording the global
    collection knowledge the inference network needs: number of
    documents, document lengths, document frequency per term.  The
    [getBL] operator — logical and physical — reads beliefs off these
    statistics. *)

type t

val create : string -> t
(** Fresh empty space with the given name. *)

val name : t -> string
(** The space's name (the catalog prefix of its extent). *)

val vocab : t -> Vocab.t
(** The space's term dictionary. *)

val add_doc : t -> doc:int -> (string * float) list -> int list
(** Register one document's term bag: updates [ndocs], the document's
    length (sum of tfs) and per-term document frequencies.  Returns the
    interned term ids, aligned with the input bag.
    @raise Invalid_argument if [doc] was already added. *)

val ndocs : t -> int
(** Number of registered documents. *)

val df : t -> int -> int
(** Document frequency of a term id (0 for unknown ids). *)

val doc_len : t -> int -> float
(** Length of a document (0 when unknown). *)

val avg_doc_len : t -> float
(** Mean document length (0 for an empty space). *)

val mem_doc : t -> int -> bool
(** Was this document registered? *)

val belief : t -> tf:float -> term:int -> float -> float
(** [belief space ~tf ~term doclen] — the InQuery default belief of a
    document with the given length containing [term] [tf] times; see
    {!Belief.belief}. *)

(** {1 Physical index}

    The storage manager may attach an inverted index to the space when
    it materialises the CONTREP occurrences.  The index is keyed by the
    physical identity of the occurrence BATs' shared head column, so
    physical operators can recognise "I was handed the unfiltered base
    representation" and skip the occurrence scan. *)

val set_index :
  t -> heads:int array -> postings:(string, (int, float) Hashtbl.t) Hashtbl.t -> unit
(** Attach the inverted index: [postings] maps a term to its per-context
    term frequencies; [heads] is the occurrence-oid column the index was
    built from. *)

val index : t -> heads:int array -> (string, (int, float) Hashtbl.t) Hashtbl.t option
(** The postings, provided [heads] is physically the indexed column
    ([==]); [None] otherwise (filtered or rebased occurrences). *)
