(* Direct port of Martin Porter's reference implementation.  The word
   lives in [b.(0..k)]; [j] marks the stem end during condition tests. *)

type state = { mutable b : Bytes.t; mutable k : int; mutable j : int }

let rec is_cons s i =
  match Bytes.get s.b i with
  | 'a' | 'e' | 'i' | 'o' | 'u' -> false
  | 'y' -> if i = 0 then true else not (is_cons s (i - 1))
  | _ -> true

(* measure of the stem b[0..j] *)
let measure s =
  let n = ref 0 in
  let i = ref 0 in
  let continue = ref true in
  (* skip initial consonants *)
  while !continue do
    if !i > s.j then continue := false
    else if not (is_cons s !i) then continue := false
    else incr i
  done;
  if !i <= s.j then begin
    let running = ref true in
    while !running do
      (* skip vowels *)
      let c1 = ref true in
      while !c1 do
        if !i > s.j then begin
          c1 := false;
          running := false
        end
        else if is_cons s !i then c1 := false
        else incr i
      done;
      if !running then begin
        incr i;
        incr n;
        (* skip consonants *)
        let c2 = ref true in
        while !c2 do
          if !i > s.j then begin
            c2 := false;
            running := false
          end
          else if not (is_cons s !i) then c2 := false
          else incr i
        done;
        if !running then incr i
      end
    done
  end;
  !n

let vowel_in_stem s =
  let rec go i = i <= s.j && (not (is_cons s i) || go (i + 1)) in
  go 0

let double_cons s i = i >= 1 && Bytes.get s.b i = Bytes.get s.b (i - 1) && is_cons s i

(* cvc ending where the last consonant is not w, x or y *)
let cvc s i =
  if i < 2 || not (is_cons s i) || is_cons s (i - 1) || not (is_cons s (i - 2)) then false
  else
    match Bytes.get s.b i with
    | 'w' | 'x' | 'y' -> false
    | _ -> true

let ends s suffix =
  let l = String.length suffix in
  if l > s.k + 1 then false
  else if Bytes.sub_string s.b (s.k - l + 1) l <> suffix then false
  else begin
    s.j <- s.k - l;
    true
  end

let set_to s suffix =
  let l = String.length suffix in
  Bytes.blit_string suffix 0 s.b (s.j + 1) l;
  s.k <- s.j + l

let replace_if_m_gt_0 s suffix = if measure s > 0 then set_to s suffix

let step1ab s =
  if Bytes.get s.b s.k = 's' then begin
    if ends s "sses" then s.k <- s.k - 2
    else if ends s "ies" then set_to s "i"
    else if Bytes.get s.b (s.k - 1) <> 's' then s.k <- s.k - 1
  end;
  if ends s "eed" then begin
    if measure s > 0 then s.k <- s.k - 1
  end
  else if (ends s "ed" || ends s "ing") && vowel_in_stem s then begin
    s.k <- s.j;
    if ends s "at" then set_to s "ate"
    else if ends s "bl" then set_to s "ble"
    else if ends s "iz" then set_to s "ize"
    else if double_cons s s.k then begin
      match Bytes.get s.b s.k with
      | 'l' | 's' | 'z' -> ()
      | _ -> s.k <- s.k - 1
    end
    else begin
      s.j <- s.k;
      if measure s = 1 && cvc s s.k then set_to s "e"
    end
  end

let step1c s = if ends s "y" && vowel_in_stem s then Bytes.set s.b s.k 'i'

let step2 s =
  let rules =
    [
      ("ational", "ate"); ("tional", "tion"); ("enci", "ence"); ("anci", "ance");
      ("izer", "ize"); ("abli", "able"); ("alli", "al"); ("entli", "ent"); ("eli", "e");
      ("ousli", "ous"); ("ization", "ize"); ("ation", "ate"); ("ator", "ate");
      ("alism", "al"); ("iveness", "ive"); ("fulness", "ful"); ("ousness", "ous");
      ("aliti", "al"); ("iviti", "ive"); ("biliti", "ble");
    ]
  in
  (* dispatch on the penultimate character like the reference code; a
     simple linear scan is fine at our scale *)
  ignore (List.exists (fun (suf, rep) -> if ends s suf then (replace_if_m_gt_0 s rep; true) else false) rules)

let step3 s =
  let rules =
    [
      ("icate", "ic"); ("ative", ""); ("alize", "al"); ("iciti", "ic"); ("ical", "ic");
      ("ful", ""); ("ness", "");
    ]
  in
  ignore (List.exists (fun (suf, rep) -> if ends s suf then (replace_if_m_gt_0 s rep; true) else false) rules)

let step4 s =
  let simple =
    [
      "al"; "ance"; "ence"; "er"; "ic"; "able"; "ible"; "ant"; "ement"; "ment"; "ent";
      "ou"; "ism"; "ate"; "iti"; "ous"; "ive"; "ize";
    ]
  in
  let matched =
    List.exists (fun suf -> ends s suf) simple
    ||
    (* (s|t)ion -> ion *)
    (ends s "ion"
    && s.j >= 0
    && (Bytes.get s.b s.j = 's' || Bytes.get s.b s.j = 't'))
  in
  if matched && measure s > 1 then s.k <- s.j

let step5 s =
  s.j <- s.k;
  if Bytes.get s.b s.k = 'e' then begin
    let a = measure s in
    if a > 1 || (a = 1 && not (cvc s (s.k - 1))) then s.k <- s.k - 1
  end;
  if Bytes.get s.b s.k = 'l' && double_cons s s.k && measure s > 1 then s.k <- s.k - 1

let stem word =
  let word = String.lowercase_ascii word in
  if String.length word <= 2 then word
  else begin
    let s = { b = Bytes.of_string word; k = String.length word - 1; j = 0 } in
    step1ab s;
    step1c s;
    step2 s;
    step3 s;
    step4 s;
    step5 s;
    Bytes.sub_string s.b 0 (s.k + 1)
  end
