(** Inverted index over a statistics space.

    Postings are kept per interned term id; each posting is a
    (document, term frequency) pair.  The Mirror DBMS stores document
    representations as BATs; this standalone index serves the direct
    IR API (thesaurus construction, daemons, examples) and can export
    its postings as BATs for the catalog. *)

type t

val create : string -> t
(** Empty index whose space has the given name. *)

val space : t -> Space.t
(** The statistics space maintained by this index. *)

val add_doc : t -> doc:int -> (string * float) list -> unit
(** Index one document's term bag (also updates the space).
    @raise Invalid_argument if [doc] was already indexed. *)

val postings : t -> string -> (int * float) list
(** [(doc, tf)] pairs for a term, in insertion order; empty for unknown
    terms. *)

val doc_tf : t -> doc:int -> term:string -> float
(** Term frequency of [term] in [doc] (0 when absent). *)

val ndocs : t -> int
(** Documents indexed. *)

val docs : t -> int list
(** All document ids, in insertion order. *)

val to_bats :
  t ->
  base:int ->
  Mirror_bat.Bat.t * Mirror_bat.Bat.t * Mirror_bat.Bat.t * Mirror_bat.Bat.t
(** Export the CONTREP physical representation
    [(occ->doc, occ->term_string, occ->tf, doc->length)] with
    occurrence oids starting at [base]. *)
