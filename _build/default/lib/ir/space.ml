type t = {
  sname : string;
  voc : Vocab.t;
  mutable ndocs : int;
  mutable df : int array;
  doclen : (int, float) Hashtbl.t;
  mutable total_len : float;
  mutable idx_heads : int array option;
  mutable idx_postings : (string, (int, float) Hashtbl.t) Hashtbl.t option;
}

let create sname =
  {
    sname;
    voc = Vocab.create ();
    ndocs = 0;
    df = Array.make 256 0;
    doclen = Hashtbl.create 64;
    total_len = 0.0;
    idx_heads = None;
    idx_postings = None;
  }

let name t = t.sname
let vocab t = t.voc

let bump_df t id =
  if id >= Array.length t.df then begin
    let fresh = Array.make (max (2 * Array.length t.df) (id + 1)) 0 in
    Array.blit t.df 0 fresh 0 (Array.length t.df);
    t.df <- fresh
  end;
  t.df.(id) <- t.df.(id) + 1

let add_doc t ~doc bag =
  if Hashtbl.mem t.doclen doc then
    invalid_arg (Printf.sprintf "Space.add_doc: document %d already registered in %S" doc t.sname);
  let len = List.fold_left (fun acc (_, tf) -> acc +. tf) 0.0 bag in
  Hashtbl.add t.doclen doc len;
  t.total_len <- t.total_len +. len;
  t.ndocs <- t.ndocs + 1;
  (* df counts distinct terms per document *)
  let seen = Hashtbl.create (List.length bag) in
  List.map
    (fun (w, _) ->
      let id = Vocab.intern t.voc w in
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        bump_df t id
      end;
      id)
    bag

let ndocs t = t.ndocs
let df t id = if id >= 0 && id < Array.length t.df then t.df.(id) else 0
let doc_len t doc = Option.value ~default:0.0 (Hashtbl.find_opt t.doclen doc)
let avg_doc_len t = if t.ndocs = 0 then 0.0 else t.total_len /. Float.of_int t.ndocs
let mem_doc t doc = Hashtbl.mem t.doclen doc

let set_index t ~heads ~postings =
  t.idx_heads <- Some heads;
  t.idx_postings <- Some postings

let index t ~heads =
  match (t.idx_heads, t.idx_postings) with
  | Some h, Some p when h == heads -> Some p
  | _ -> None

let belief t ~tf ~term doclen =
  Belief.belief ~tf ~df:(df t term) ~ndocs:t.ndocs ~doclen ~avg_doclen:(avg_doc_len t)
