(** Text analysis: raw annotation text to indexable terms. *)

val words : string -> string list
(** Lower-cased maximal runs of ASCII letters/digits (single characters
    are dropped). *)

val terms : ?stem:bool -> ?stop:bool -> string -> string list
(** {!words} with stopword removal ([stop], default true) and Porter
    stemming ([stem], default true) applied, in input order. *)

val tf_bag : ?stem:bool -> ?stop:bool -> string -> (string * float) list
(** Term-frequency bag of {!terms}: each distinct term with its count,
    in first-occurrence order. *)

val bag_of_words : string list -> (string * float) list
(** TF bag of an already-tokenised word list (no stemming or stopping —
    used for visual words, which must not be mangled). *)
