(** Inference-network query operator trees.

    "It allows flexible modeling of the combination of evidence
    originating from different sources" — query nets combine term
    beliefs with the InQuery operators.  A net is evaluated against a
    belief oracle for the leaf terms. *)

type t =
  | Term of string * float  (** Query term with weight (1.0 = plain). *)
  | Sum of t list  (** #sum: mean of children. *)
  | Wsum of (float * t) list  (** #wsum: weighted mean. *)
  | And of t list  (** #and: product. *)
  | Or of t list  (** #or: noisy-or. *)
  | Not of t  (** #not: complement. *)
  | Max of t list  (** #max. *)

val terms : t -> (string * float) list
(** All leaf terms with their weights, in order, duplicates kept. *)

val eval : (string -> float) -> t -> float
(** Evaluate against a belief oracle for the leaves.  Weighted leaves
    feed their weight into the nearest enclosing [Wsum]-like average —
    concretely a [Term (w, t)] leaf evaluates to the oracle belief;
    weights participate in {!Belief.Combine.wsum} under [Sum] and
    [Wsum] nodes. *)

val flat : string list -> t
(** [#sum] over unit-weight terms — the shape of the paper's example
    queries (a set of query terms combined by [map[sum(THIS)]]). *)

val of_string : string -> (t, string) result
(** Parse the concrete syntax
    [#sum( cat dog^2.5 #and( stripes yellow ) #not( grid ) )].
    A bare word list parses as {!flat}.  Term weights attach with
    [word^weight]. *)

val to_string : t -> string
(** Render back to the concrete syntax. *)
