type t = {
  ids : (string, int) Hashtbl.t;
  mutable words : string array;
  mutable n : int;
}

let create () = { ids = Hashtbl.create 256; words = Array.make 256 ""; n = 0 }

let intern t w =
  match Hashtbl.find_opt t.ids w with
  | Some id -> id
  | None ->
    let id = t.n in
    if id = Array.length t.words then begin
      let fresh = Array.make (2 * id) "" in
      Array.blit t.words 0 fresh 0 id;
      t.words <- fresh
    end;
    t.words.(id) <- w;
    Hashtbl.add t.ids w id;
    t.n <- t.n + 1;
    id

let find t w = Hashtbl.find_opt t.ids w

let word t id = if id < 0 || id >= t.n then raise Not_found else t.words.(id)

let size t = t.n

let iter f t =
  for id = 0 to t.n - 1 do
    f t.words.(id) id
  done
