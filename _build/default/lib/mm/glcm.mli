(** Grey-level co-occurrence matrix (Haralick) texture features
    (MeasTex reference algorithm 2).

    The region's luminance is quantised to {!levels} grey levels; a
    symmetric co-occurrence matrix is accumulated for each of two pixel
    offsets (east and south neighbours), and five classic Haralick
    statistics are computed per offset. *)

val levels : int
(** Grey quantisation levels (8). *)

val dims : int
(** 2 offsets x 5 statistics = 10. *)

val matrix : Image.t -> Segment.region -> dx:int -> dy:int -> float array array
(** The normalised symmetric co-occurrence matrix for one offset —
    exposed for tests (rows sum to 1 overall). *)

val extract : Image.t -> Segment.region -> float array
(** [contrast; energy; entropy; homogeneity; correlation] for offsets
    (1,0) then (0,1). *)
