(** In-memory raster images.

    The paper's media server stores web-crawled images; our media server
    stores values of this type.  Pixels are RGB triples of floats in
    [0,1], stored row-major in three parallel planes (a miniature
    column store — one "BAT" per channel, in keeping with the physical
    model). *)

type t = private {
  width : int;
  height : int;
  red : float array;
  green : float array;
  blue : float array;
}

val create : width:int -> height:int -> t
(** Black image. *)

val init : width:int -> height:int -> (x:int -> y:int -> float * float * float) -> t
(** Initialise from a pixel function. *)

val get : t -> x:int -> y:int -> float * float * float
(** Pixel at (x, y). @raise Invalid_argument out of bounds. *)

val set : t -> x:int -> y:int -> float * float * float -> unit
(** Write pixel (values are clamped to [0,1]). *)

val gray : t -> float array
(** Luminance plane (Rec. 601 weights), row-major. *)

val gray_at : t -> x:int -> y:int -> float
(** Luminance of one pixel. *)

val mean_color : t -> float * float * float
(** Average of each channel. *)

val npixels : t -> int
(** [width * height]. *)

val rgb_to_hsv : float * float * float -> float * float * float
(** Convert one pixel to (hue in [0,1), saturation, value). *)
