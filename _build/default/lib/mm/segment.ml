type region = { x : int; y : int; w : int; h : int }

type params = {
  var_threshold : float;
  min_size : int;
  merge_threshold : float;
}

let default_params = { var_threshold = 0.02; min_size = 8; merge_threshold = 0.08 }

let region_pixels r = r.w * r.h

let channel_stats img r =
  let n = Float.of_int (region_pixels r) in
  let sr = ref 0.0 and sg = ref 0.0 and sb = ref 0.0 in
  let qr = ref 0.0 and qg = ref 0.0 and qb = ref 0.0 in
  for y = r.y to r.y + r.h - 1 do
    for x = r.x to r.x + r.w - 1 do
      let pr, pg, pb = Image.get img ~x ~y in
      sr := !sr +. pr;
      sg := !sg +. pg;
      sb := !sb +. pb;
      qr := !qr +. (pr *. pr);
      qg := !qg +. (pg *. pg);
      qb := !qb +. (pb *. pb)
    done
  done;
  let mean s = s /. n in
  let var s q = Float.max 0.0 ((q /. n) -. (mean s *. mean s)) in
  ((mean !sr, mean !sg, mean !sb), var !sr !qr +. var !sg !qg +. var !sb !qb)

let mean_color img r = fst (channel_stats img r)
let color_variance img r = snd (channel_stats img r)

let split ?(params = default_params) img =
  let out = ref [] in
  let rec go r =
    let splittable = r.w >= 2 * params.min_size || r.h >= 2 * params.min_size in
    if splittable && color_variance img r > params.var_threshold then begin
      let halves_x = if r.w >= 2 * params.min_size then 2 else 1 in
      let halves_y = if r.h >= 2 * params.min_size then 2 else 1 in
      let w2 = r.w / halves_x and h2 = r.h / halves_y in
      for i = 0 to halves_x - 1 do
        for j = 0 to halves_y - 1 do
          let x = r.x + (i * w2) and y = r.y + (j * h2) in
          let w = if i = halves_x - 1 then r.x + r.w - x else w2 in
          let h = if j = halves_y - 1 then r.y + r.h - y else h2 in
          go { x; y; w; h }
        done
      done
    end
    else out := r :: !out
  in
  go { x = 0; y = 0; w = img.Image.width; h = img.Image.height };
  List.rev !out

let adjacent a b =
  let overlap a0 alen b0 blen = a0 < b0 + blen && b0 < a0 + alen in
  (* share a vertical edge *)
  ((a.x + a.w = b.x || b.x + b.w = a.x) && overlap a.y a.h b.y b.h)
  || (* share a horizontal edge *)
  ((a.y + a.h = b.y || b.y + b.h = a.y) && overlap a.x a.w b.x b.w)

let color_dist (r1, g1, b1) (r2, g2, b2) =
  sqrt (((r1 -. r2) ** 2.0) +. ((g1 -. g2) ** 2.0) +. ((b1 -. b2) ** 2.0))

(* Union-find over region indices. *)
let find parent i =
  let rec go i = if parent.(i) = i then i else go parent.(i) in
  let root = go i in
  let rec compress i =
    if parent.(i) <> root then begin
      let next = parent.(i) in
      parent.(i) <- root;
      compress next
    end
  in
  compress i;
  root

let segment ?(params = default_params) img =
  let regions = Array.of_list (split ~params img) in
  let n = Array.length regions in
  let means = Array.map (fun r -> mean_color img r) regions in
  let parent = Array.init n (fun i -> i) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if
        adjacent regions.(i) regions.(j)
        && color_dist means.(i) means.(j) < params.merge_threshold
      then begin
        let ri = find parent i and rj = find parent j in
        if ri <> rj then parent.(rj) <- ri
      end
    done
  done;
  let groups = Hashtbl.create n in
  for i = 0 to n - 1 do
    let root = find parent i in
    let existing = try Hashtbl.find groups root with Not_found -> [] in
    Hashtbl.replace groups root (regions.(i) :: existing)
  done;
  (* Deterministic order: by smallest region index in the group. *)
  let roots = List.init n (fun i -> i) |> List.filter (fun i -> find parent i = i) in
  List.map (fun root -> List.rev (Hashtbl.find groups root)) roots

let segment_flat ?(params = default_params) img = List.concat (segment ~params img)

let crop img r =
  Image.init ~width:r.w ~height:r.h (fun ~x ~y -> Image.get img ~x:(r.x + x) ~y:(r.y + y))
