module Prng = Mirror_util.Prng
module Vecmath = Mirror_util.Vecmath

type result = {
  centroids : float array array;
  assign : int array;
  inertia : float;
  iterations : int;
}

let plusplus_init g ~k points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Kmeans: no points";
  let k = min k n in
  let centroids = Array.make k points.(0) in
  centroids.(0) <- Array.copy points.(Prng.int g n);
  let d2 = Array.map (fun p -> Vecmath.dist2 p centroids.(0)) points in
  for c = 1 to k - 1 do
    let total = Array.fold_left ( +. ) 0.0 d2 in
    let idx =
      if total <= 0.0 then Prng.int g n
      else Prng.sample_weighted g d2
    in
    centroids.(c) <- Array.copy points.(idx);
    Array.iteri (fun i p -> d2.(i) <- Float.min d2.(i) (Vecmath.dist2 p centroids.(c))) points
  done;
  centroids

let assign_points points centroids =
  Array.map
    (fun p ->
      let best = ref 0 and bestd = ref infinity in
      Array.iteri
        (fun c mu ->
          let d = Vecmath.dist2 p mu in
          if d < !bestd then begin
            bestd := d;
            best := c
          end)
        centroids;
      !best)
    points

let run g ~k ?(max_iter = 50) points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Kmeans.run: no points";
  if k <= 0 then invalid_arg "Kmeans.run: k must be positive";
  let k = min k n in
  let dims = Array.length points.(0) in
  let centroids = plusplus_init g ~k points in
  let assign = ref (assign_points points centroids) in
  let iterations = ref 0 in
  let changed = ref true in
  while !changed && !iterations < max_iter do
    incr iterations;
    (* Recompute centroids. *)
    let sums = Array.init k (fun _ -> Array.make dims 0.0) in
    let counts = Array.make k 0 in
    Array.iteri
      (fun i c ->
        counts.(c) <- counts.(c) + 1;
        Vecmath.axpy 1.0 points.(i) sums.(c))
      !assign;
    for c = 0 to k - 1 do
      if counts.(c) = 0 then begin
        (* Re-seed an empty cluster on the point farthest from its centroid. *)
        let far = ref 0 and fard = ref neg_infinity in
        Array.iteri
          (fun i p ->
            let d = Vecmath.dist2 p centroids.(!assign.(i)) in
            if d > !fard then begin
              fard := d;
              far := i
            end)
          points;
        centroids.(c) <- Array.copy points.(!far)
      end
      else centroids.(c) <- Vecmath.scale (1.0 /. Float.of_int counts.(c)) sums.(c)
    done;
    let next = assign_points points centroids in
    changed := not (next = !assign);
    assign := next
  done;
  let inertia =
    Array.to_list points
    |> List.mapi (fun i p -> Vecmath.dist2 p centroids.(!assign.(i)))
    |> List.fold_left ( +. ) 0.0
  in
  { centroids; assign = !assign; inertia; iterations = !iterations }
