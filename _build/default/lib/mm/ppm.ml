let quantize v = int_of_float ((Float.min 1.0 (Float.max 0.0 v) *. 255.0) +. 0.5)

let encode img =
  let w = img.Image.width and h = img.Image.height in
  let buf = Buffer.create ((w * h * 3) + 32) in
  Buffer.add_string buf (Printf.sprintf "P6\n%d %d\n255\n" w h);
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let r, g, b = Image.get img ~x ~y in
      Buffer.add_char buf (Char.chr (quantize r));
      Buffer.add_char buf (Char.chr (quantize g));
      Buffer.add_char buf (Char.chr (quantize b))
    done
  done;
  Buffer.contents buf

(* Tokenised header reading: magic, width, height, maxval, with
   '#'-comments allowed between tokens. *)
type cursor = { data : string; mutable pos : int }

let rec skip_space c =
  if c.pos < String.length c.data then
    match c.data.[c.pos] with
    | ' ' | '\t' | '\n' | '\r' ->
      c.pos <- c.pos + 1;
      skip_space c
    | '#' ->
      while c.pos < String.length c.data && c.data.[c.pos] <> '\n' do
        c.pos <- c.pos + 1
      done;
      skip_space c
    | _ -> ()

let token c =
  skip_space c;
  let start = c.pos in
  while
    c.pos < String.length c.data
    &&
    match c.data.[c.pos] with ' ' | '\t' | '\n' | '\r' -> false | _ -> true
  do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then None else Some (String.sub c.data start (c.pos - start))

let decode data =
  let c = { data; pos = 0 } in
  match token c with
  | Some (("P6" | "P3") as magic) -> (
    let int_token what =
      match Option.bind (token c) int_of_string_opt with
      | Some v when v > 0 -> Ok v
      | _ -> Error ("ppm: bad " ^ what)
    in
    let ( let* ) = Result.bind in
    let* w = int_token "width" in
    let* h = int_token "height" in
    let* maxval = int_token "maxval" in
    if maxval > 255 then Error "ppm: only 8-bit channels supported"
    else if magic = "P6" then begin
      (* single whitespace byte after maxval, then raw samples *)
      c.pos <- c.pos + 1;
      if String.length data - c.pos < w * h * 3 then Error "ppm: truncated pixel data"
      else begin
        let at i = Float.of_int (Char.code data.[c.pos + i]) /. Float.of_int maxval in
        Ok
          (Image.init ~width:w ~height:h (fun ~x ~y ->
               let base = 3 * ((y * w) + x) in
               (at base, at (base + 1), at (base + 2))))
      end
    end
    else begin
      (* P3: ascii samples *)
      let n = w * h * 3 in
      let samples = Array.make n 0.0 in
      let rec fill i =
        if i = n then Ok ()
        else
          match Option.bind (token c) int_of_string_opt with
          | Some v ->
            samples.(i) <- Float.of_int v /. Float.of_int maxval;
            fill (i + 1)
          | None -> Error "ppm: truncated ascii pixel data"
      in
      let* () = fill 0 in
      Ok
        (Image.init ~width:w ~height:h (fun ~x ~y ->
             let base = 3 * ((y * w) + x) in
             (samples.(base), samples.(base + 1), samples.(base + 2))))
    end)
  | _ -> Error "ppm: not a P6/P3 file"

let save img path =
  match open_out_bin path with
  | exception Sys_error e -> Error e
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (encode img));
    Ok ()

let load path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> decode (really_input_string ic (in_channel_length ic)))
