(** Autoregressive Markov-random-field texture features (MeasTex
    reference algorithm 3).

    Fits a causal autoregressive model
    [I(x,y) ~ a1 I(x-1,y) + a2 I(x,y-1) + a3 I(x-1,y-1) + a4 I(x+1,y-1) + c]
    over the region's luminance by least squares.  The feature vector is
    the four AR coefficients plus the residual standard deviation. *)

val dims : int
(** 5. *)

val extract : Image.t -> Segment.region -> float array
(** [a1; a2; a3; a4; residual_stddev].  Degenerate regions (too small
    or numerically singular) return the zero vector with the region's
    grey stddev in the last slot. *)
