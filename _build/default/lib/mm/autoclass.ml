module Prng = Mirror_util.Prng
module Vecmath = Mirror_util.Vecmath

type model = {
  k : int;
  weights : float array;
  means : float array array;
  variances : float array array;
  loglik : float;
  loglik_trace : float list;
}

let var_floor = 1e-4
let log_two_pi = log (2.0 *. (4.0 *. atan 1.0))

(* Log density of point [x] under component [c]. *)
let component_logpdf means variances c x =
  let mu = means.(c) and var = variances.(c) in
  let d = Array.length x in
  let acc = ref 0.0 in
  for i = 0 to d - 1 do
    let diff = x.(i) -. mu.(i) in
    acc := !acc -. (0.5 *. (log_two_pi +. log var.(i) +. (diff *. diff /. var.(i))))
  done;
  !acc

let point_log_mixture weights means variances x =
  let k = Array.length weights in
  let terms = Array.init k (fun c -> log weights.(c) +. component_logpdf means variances c x) in
  Vecmath.log_sum_exp terms

let em_run g ~k ~max_iter ~tol points =
  let n = Array.length points in
  let d = Array.length points.(0) in
  (* Initialise from k-means. *)
  let km = Kmeans.run g ~k points in
  let k = Array.length km.Kmeans.centroids in
  let weights = Array.make k (1.0 /. Float.of_int k) in
  let means = Array.map Array.copy km.Kmeans.centroids in
  let variances = Array.init k (fun _ -> Array.make d 1.0) in
  (* Initial variances from k-means assignment. *)
  let counts = Array.make k 0 in
  Array.iteri (fun i c -> counts.(c) <- counts.(c) + 1; ignore i) km.Kmeans.assign;
  for c = 0 to k - 1 do
    let acc = Array.make d 0.0 in
    Array.iteri
      (fun i p ->
        if km.Kmeans.assign.(i) = c then
          Array.iteri (fun j v -> acc.(j) <- acc.(j) +. ((v -. means.(c).(j)) ** 2.0)) p)
      points;
    for j = 0 to d - 1 do
      variances.(c).(j) <-
        Float.max var_floor (if counts.(c) > 0 then acc.(j) /. Float.of_int counts.(c) else 1.0)
    done
  done;
  let resp = Array.make_matrix n k 0.0 in
  let trace = ref [] in
  let prev_ll = ref neg_infinity in
  let iter = ref 0 in
  let continue = ref true in
  while !continue && !iter < max_iter do
    incr iter;
    (* E step. *)
    let ll = ref 0.0 in
    for i = 0 to n - 1 do
      let terms =
        Array.init k (fun c -> log weights.(c) +. component_logpdf means variances c points.(i))
      in
      let lse = Vecmath.log_sum_exp terms in
      ll := !ll +. lse;
      for c = 0 to k - 1 do
        resp.(i).(c) <- exp (terms.(c) -. lse)
      done
    done;
    trace := !ll :: !trace;
    (* M step. *)
    for c = 0 to k - 1 do
      let nc = ref 0.0 in
      for i = 0 to n - 1 do
        nc := !nc +. resp.(i).(c)
      done;
      let nc = Float.max !nc 1e-10 in
      weights.(c) <- nc /. Float.of_int n;
      let mu = Array.make d 0.0 in
      for i = 0 to n - 1 do
        Vecmath.axpy resp.(i).(c) points.(i) mu
      done;
      means.(c) <- Vecmath.scale (1.0 /. nc) mu;
      let var = Array.make d 0.0 in
      for i = 0 to n - 1 do
        for j = 0 to d - 1 do
          let diff = points.(i).(j) -. means.(c).(j) in
          var.(j) <- var.(j) +. (resp.(i).(c) *. diff *. diff)
        done
      done;
      for j = 0 to d - 1 do
        variances.(c).(j) <- Float.max var_floor (var.(j) /. nc)
      done
    done;
    if !ll -. !prev_ll < tol && !iter > 1 then continue := false;
    prev_ll := !ll
  done;
  (* Final log-likelihood under the last parameters. *)
  let final_ll = ref 0.0 in
  for i = 0 to n - 1 do
    final_ll := !final_ll +. point_log_mixture weights means variances points.(i)
  done;
  { k; weights; means; variances; loglik = !final_ll; loglik_trace = List.rev !trace }

let fit g ~k ?(restarts = 2) ?(max_iter = 60) ?(tol = 1e-5) points =
  if Array.length points = 0 then invalid_arg "Autoclass.fit: no data";
  if k <= 0 then invalid_arg "Autoclass.fit: k must be positive";
  let best = ref None in
  for _ = 1 to max 1 restarts do
    let m = em_run g ~k ~max_iter ~tol points in
    match !best with
    | Some b when b.loglik >= m.loglik -> ()
    | _ -> best := Some m
  done;
  Option.get !best

let nparams m =
  let d = Array.length m.means.(0) in
  (* weights (k-1) + means (k*d) + variances (k*d) *)
  (m.k - 1) + (2 * m.k * d)

let bic m ~n = (-2.0 *. m.loglik) +. (Float.of_int (nparams m) *. log (Float.of_int n))

let select g ?(kmin = 2) ?(kmax = 8) ?(restarts = 2) points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Autoclass.select: no data";
  let kmin = max 1 (min kmin n) and kmax = max 1 (min kmax n) in
  let best = ref None in
  for k = kmin to max kmin kmax do
    let m = fit g ~k ~restarts points in
    let score = bic m ~n in
    match !best with
    | Some (bscore, _) when bscore <= score -> ()
    | _ -> best := Some (score, m)
  done;
  snd (Option.get !best)

let posterior m x =
  let terms =
    Array.init m.k (fun c -> log m.weights.(c) +. component_logpdf m.means m.variances c x)
  in
  let lse = Vecmath.log_sum_exp terms in
  Array.map (fun t -> exp (t -. lse)) terms

let classify m x = Vecmath.argmax (posterior m x)

let log_density m x = point_log_mixture m.weights m.means m.variances x
