let levels = 8
let dims = 10

let quantize v =
  let q = int_of_float (v *. Float.of_int levels) in
  max 0 (min (levels - 1) q)

let matrix img (r : Segment.region) ~dx ~dy =
  let m = Array.make_matrix levels levels 0.0 in
  let total = ref 0.0 in
  for y = r.Segment.y to r.Segment.y + r.Segment.h - 1 - abs dy do
    for x = r.Segment.x to r.Segment.x + r.Segment.w - 1 - abs dx do
      let a = quantize (Image.gray_at img ~x ~y) in
      let b = quantize (Image.gray_at img ~x:(x + dx) ~y:(y + dy)) in
      (* symmetric GLCM *)
      m.(a).(b) <- m.(a).(b) +. 1.0;
      m.(b).(a) <- m.(b).(a) +. 1.0;
      total := !total +. 2.0
    done
  done;
  if !total > 0.0 then
    for i = 0 to levels - 1 do
      for j = 0 to levels - 1 do
        m.(i).(j) <- m.(i).(j) /. !total
      done
    done;
  m

let stats m =
  let contrast = ref 0.0
  and energy = ref 0.0
  and entropy = ref 0.0
  and homogeneity = ref 0.0 in
  let mu_i = ref 0.0 and mu_j = ref 0.0 in
  for i = 0 to levels - 1 do
    for j = 0 to levels - 1 do
      let p = m.(i).(j) in
      let d = Float.of_int (i - j) in
      contrast := !contrast +. (p *. d *. d);
      energy := !energy +. (p *. p);
      if p > 0.0 then entropy := !entropy -. (p *. log p);
      homogeneity := !homogeneity +. (p /. (1.0 +. Float.abs d));
      mu_i := !mu_i +. (Float.of_int i *. p);
      mu_j := !mu_j +. (Float.of_int j *. p)
    done
  done;
  let var_i = ref 0.0 and var_j = ref 0.0 and cov = ref 0.0 in
  for i = 0 to levels - 1 do
    for j = 0 to levels - 1 do
      let p = m.(i).(j) in
      let di = Float.of_int i -. !mu_i and dj = Float.of_int j -. !mu_j in
      var_i := !var_i +. (p *. di *. di);
      var_j := !var_j +. (p *. dj *. dj);
      cov := !cov +. (p *. di *. dj)
    done
  done;
  let correlation =
    let denom = sqrt (!var_i *. !var_j) in
    if denom < 1e-12 then 0.0 else !cov /. denom
  in
  [| !contrast; !energy; !entropy; !homogeneity; correlation |]

let extract img r =
  let east = stats (matrix img r ~dx:1 ~dy:0) in
  let south = stats (matrix img r ~dx:0 ~dy:1) in
  Array.append east south
