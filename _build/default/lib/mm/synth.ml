module Prng = Mirror_util.Prng

type texture_class = Stripes | Checker | Blobs | Gradient | Speckle | Waves

let all_classes = [ Stripes; Checker; Blobs; Gradient; Speckle; Waves ]

let class_name = function
  | Stripes -> "stripes"
  | Checker -> "checker"
  | Blobs -> "blobs"
  | Gradient -> "gradient"
  | Speckle -> "speckle"
  | Waves -> "waves"

let class_words = function
  | Stripes -> [ "stripes"; "striped"; "lines"; "banded" ]
  | Checker -> [ "checker"; "checkered"; "grid"; "squares" ]
  | Blobs -> [ "blobs"; "spots"; "dots"; "spotted" ]
  | Gradient -> [ "gradient"; "smooth"; "sky"; "fade" ]
  | Speckle -> [ "speckle"; "grainy"; "sand"; "noisy" ]
  | Waves -> [ "waves"; "wavy"; "water"; "ripples" ]

(* (name, base colour, accent colour) *)
let palettes =
  [|
    ("red", (0.55, 0.05, 0.05), (0.95, 0.35, 0.25));
    ("green", (0.05, 0.45, 0.10), (0.40, 0.90, 0.35));
    ("blue", (0.05, 0.10, 0.55), (0.30, 0.55, 0.95));
    ("yellow", (0.75, 0.65, 0.05), (1.00, 0.95, 0.40));
    ("purple", (0.40, 0.05, 0.55), (0.75, 0.40, 0.90));
    ("orange", (0.80, 0.40, 0.05), (1.00, 0.70, 0.30));
    ("gray", (0.25, 0.25, 0.25), (0.75, 0.75, 0.75));
    ("brown", (0.35, 0.22, 0.10), (0.65, 0.50, 0.30));
  |]

let palette_count = Array.length palettes

let palette_name i =
  if i < 0 || i >= palette_count then invalid_arg "Synth.palette_name: out of range";
  let name, _, _ = palettes.(i) in
  name

type region_truth = {
  x : int;
  y : int;
  w : int;
  h : int;
  cls : texture_class;
  palette : int;
}

type scene = {
  image : Image.t;
  truth : region_truth list;
  caption : string list option;
}

let pi = 4.0 *. atan 1.0

(* Per-class intensity pattern in [0,1]; parameters drawn once per call. *)
let pattern g cls =
  match cls with
  | Stripes ->
    let theta = Prng.float g pi in
    let wavelength = 3.0 +. Prng.float g 6.0 in
    let cx = cos theta and sy = sin theta in
    fun x y ->
      0.5 +. (0.5 *. sin (2.0 *. pi *. ((Float.of_int x *. cx) +. (Float.of_int y *. sy)) /. wavelength))
  | Checker ->
    let cell = 3 + Prng.int g 5 in
    fun x y -> if ((x / cell) + (y / cell)) mod 2 = 0 then 0.0 else 1.0
  | Blobs ->
    let k = 4 + Prng.int g 5 in
    let centers =
      Array.init k (fun _ -> (Prng.float g 1.0, Prng.float g 1.0, 0.03 +. Prng.float g 0.08))
    in
    fun x y ->
      let fx = Float.of_int x /. 64.0 and fy = Float.of_int y /. 64.0 in
      let v =
        Array.fold_left
          (fun acc (cx, cy, s) ->
            let d2 = ((fx -. cx) ** 2.0) +. ((fy -. cy) ** 2.0) in
            acc +. exp (-.d2 /. (2.0 *. s *. s)))
          0.0 centers
      in
      Float.min 1.0 v
  | Gradient ->
    let a = Prng.float g 1.0 and b = Prng.float g 1.0 in
    let norm = Float.max 1e-6 (a +. b) in
    fun x y -> ((a *. Float.of_int x /. 64.0) +. (b *. Float.of_int y /. 64.0)) /. norm
  | Speckle -> fun _ _ -> 0.0 (* replaced by per-pixel noise below *)
  | Waves ->
    let wavelength = 4.0 +. Prng.float g 6.0 in
    let amp = 1.0 +. Prng.float g 3.0 in
    fun x y ->
      0.5
      +. 0.5
         *. sin ((Float.of_int x +. (amp *. sin (Float.of_int y /. wavelength))) *. 2.0 *. pi /. wavelength)

let lerp (r1, g1, b1) (r2, g2, b2) t =
  (r1 +. ((r2 -. r1) *. t), g1 +. ((g2 -. g1) *. t), b1 +. ((b2 -. b1) *. t))

let render_into g img ~x0 ~y0 ~w ~h cls palette =
  let _, base, accent = palettes.(palette) in
  let pat = pattern g cls in
  let noise_amp = if cls = Speckle then 0.9 else 0.08 in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let t = pat x y in
      let t = t +. (noise_amp *. (Prng.float g 1.0 -. 0.5)) in
      let t = Float.min 1.0 (Float.max 0.0 t) in
      Image.set img ~x:(x0 + x) ~y:(y0 + y) (lerp base accent t)
    done
  done

let render_texture g ~width ~height cls palette =
  let img = Image.create ~width ~height in
  render_into g img ~x0:0 ~y0:0 ~w:width ~h:height cls palette;
  img

let caption_words g truth =
  let words = ref [] in
  List.iter
    (fun r ->
      (* canonical class word always; one synonym sometimes *)
      let cw = class_words r.cls in
      words := List.hd cw :: !words;
      if Prng.float g 1.0 < 0.5 then words := List.nth cw (1 + Prng.int g (List.length cw - 1)) :: !words;
      words := palette_name r.palette :: !words)
    truth;
  (* noise words *)
  let noise = [| "image"; "picture"; "photo"; "the"; "a"; "texture" |] in
  let k = Prng.int g 3 in
  for _ = 1 to k do
    words := Prng.choose g noise :: !words
  done;
  List.rev !words

let scene g ?(width = 64) ?(height = 64) ?(regions = 2) ?(annotated = true) () =
  if regions < 1 then invalid_arg "Synth.scene: regions must be >= 1";
  let img = Image.create ~width ~height in
  let vertical = Prng.bool g in
  let rects =
    if vertical then
      List.init regions (fun i ->
          let x0 = i * width / regions in
          let x1 = (i + 1) * width / regions in
          (x0, 0, x1 - x0, height))
    else
      List.init regions (fun i ->
          let y0 = i * height / regions in
          let y1 = (i + 1) * height / regions in
          (0, y0, width, y1 - y0))
  in
  let classes = Array.of_list all_classes in
  let truth =
    List.map
      (fun (x, y, w, h) ->
        let cls = Prng.choose g classes in
        let palette = Prng.int g palette_count in
        render_into g img ~x0:x ~y0:y ~w ~h cls palette;
        { x; y; w; h; cls; palette })
      rects
  in
  let caption = if annotated then Some (caption_words g truth) else None in
  { image = img; truth; caption }

let corpus g ~n ?(width = 64) ?(height = 64) ?(annotated_fraction = 0.7) () =
  Array.init n (fun _ ->
      let annotated = Prng.float g 1.0 < annotated_fraction in
      let regions = 1 + Prng.int g 2 in
      scene g ~width ~height ~regions ~annotated ())

let relevant s ~query_words =
  let lower = List.map String.lowercase_ascii query_words in
  List.exists
    (fun r ->
      List.exists (fun w -> List.mem w lower) (class_words r.cls)
      || List.mem (palette_name r.palette) lower)
    s.truth
