(** Bayesian mixture clustering — the AutoClass substitute.

    AutoClass (Cheeseman & Stutz 1995) fits a finite mixture model and
    selects the number of classes automatically.  We reproduce that
    behaviour with a diagonal-covariance Gaussian mixture fitted by EM
    (k-means++ initialisation, multiple restarts) and class-count
    selection by the Bayesian information criterion, which approximates
    AutoClass's marginal-likelihood comparison. *)

type model = {
  k : int;  (** Number of mixture components. *)
  weights : float array;  (** Component priors (sum to 1). *)
  means : float array array;  (** Component means. *)
  variances : float array array;  (** Per-dimension variances (floored). *)
  loglik : float;  (** Final training log-likelihood. *)
  loglik_trace : float list;  (** Per-EM-iteration log-likelihood, oldest first. *)
}

val fit :
  Mirror_util.Prng.t ->
  k:int ->
  ?restarts:int ->
  ?max_iter:int ->
  ?tol:float ->
  float array array ->
  model
(** Fit a [k]-component mixture; the best of [restarts] (default 2)
    EM runs by log-likelihood is returned.
    @raise Invalid_argument on empty data or non-positive [k]. *)

val bic : model -> n:int -> float
(** Bayesian information criterion (lower is better):
    [-2 loglik + params ln n]. *)

val select :
  Mirror_util.Prng.t ->
  ?kmin:int ->
  ?kmax:int ->
  ?restarts:int ->
  float array array ->
  model
(** Fit for each class count in [kmin..kmax] (defaults 2..8, clamped to
    the data size) and keep the best BIC — the "automatic class
    discovery" behaviour the paper gets from AutoClass. *)

val posterior : model -> float array -> float array
(** Class membership probabilities for one point (sums to 1). *)

val classify : model -> float array -> int
(** Most probable class. *)

val log_density : model -> float array -> float
(** Log mixture density of one point. *)
