(** The feature-extraction daemon registry.

    Each value of {!type-t} corresponds to one feature-extraction daemon of
    the paper's figure 1: the two colour-histogram daemons and the four
    MeasTex texture daemons.  Every extractor maps an image region to a
    fixed-dimension feature vector; each extractor's outputs form one
    "feature space" that AutoClass later clusters. *)

type t = {
  name : string;  (** Feature-space name, e.g. "rgb" or "gabor". *)
  dims : int;  (** Output dimensionality. *)
  extract : Image.t -> Segment.region -> float array;
}

val rgb_histogram : t
(** First colour daemon (RGB cube). *)

val hsv_histogram : t
(** Second colour daemon (HSV). *)

val gabor : t
(** Texture daemon 1: Gabor bank. *)

val glcm : t
(** Texture daemon 2: co-occurrence statistics. *)

val mrf : t
(** Texture daemon 3: autoregressive MRF coefficients. *)

val fractal : t
(** Texture daemon 4: fractal dimension + lacunarity. *)

val all : t list
(** All six extractors, colour first. *)

val find : string -> t option
(** Look an extractor up by name. *)
