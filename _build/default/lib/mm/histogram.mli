(** Colour-histogram feature extraction.

    The demo environment runs "two color histogram daemons"; these are
    their algorithms: an RGB-cube histogram and an HSV histogram.  Both
    return L1-normalised bin frequencies over a region. *)

val rgb_dims : int
(** 4 bins per channel = 64 dimensions. *)

val rgb : Image.t -> Segment.region -> float array
(** RGB-cube histogram of the region (sums to 1 for non-empty
    regions). *)

val hsv_dims : int
(** 6 hue x 2 saturation x 2 value = 24 dimensions. *)

val hsv : Image.t -> Segment.region -> float array
(** HSV histogram of the region. *)
