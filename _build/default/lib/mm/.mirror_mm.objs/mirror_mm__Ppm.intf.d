lib/mm/ppm.mli: Image
