lib/mm/segment.ml: Array Float Hashtbl Image List
