lib/mm/fractal.mli: Image Segment
