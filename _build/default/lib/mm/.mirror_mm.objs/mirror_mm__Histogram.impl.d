lib/mm/histogram.ml: Array Float Image Mirror_util Segment
