lib/mm/segment.mli: Image
