lib/mm/autoclass.ml: Array Float Kmeans List Mirror_util Option
