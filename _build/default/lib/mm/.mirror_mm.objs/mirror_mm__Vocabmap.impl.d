lib/mm/vocabmap.ml: Array Autoclass Float List Printf String
