lib/mm/gabor.ml: Array Float Image Lazy List Segment
