lib/mm/fractal.ml: Array Float Image List Mirror_util Segment
