lib/mm/autoclass.mli: Mirror_util
