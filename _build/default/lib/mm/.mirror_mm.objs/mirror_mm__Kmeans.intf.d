lib/mm/kmeans.mli: Mirror_util
