lib/mm/synth.ml: Array Float Image List Mirror_util String
