lib/mm/mrf.ml: Array Float Image Mirror_util Segment
