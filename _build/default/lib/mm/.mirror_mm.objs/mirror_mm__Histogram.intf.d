lib/mm/histogram.mli: Image Segment
