lib/mm/image.mli:
