lib/mm/ppm.ml: Array Buffer Char Float Fun Image Option Printf Result String
