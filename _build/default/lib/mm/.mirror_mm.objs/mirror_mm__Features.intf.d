lib/mm/features.mli: Image Segment
