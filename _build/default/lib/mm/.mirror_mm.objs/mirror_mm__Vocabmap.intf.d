lib/mm/vocabmap.mli: Autoclass
