lib/mm/synth.mli: Image Mirror_util
