lib/mm/glcm.ml: Array Float Image Segment
