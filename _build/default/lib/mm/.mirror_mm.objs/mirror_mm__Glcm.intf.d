lib/mm/glcm.mli: Image Segment
