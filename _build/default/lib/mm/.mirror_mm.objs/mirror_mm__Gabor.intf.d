lib/mm/gabor.mli: Image Segment
