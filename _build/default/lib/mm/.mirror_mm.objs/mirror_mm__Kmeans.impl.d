lib/mm/kmeans.ml: Array Float List Mirror_util
