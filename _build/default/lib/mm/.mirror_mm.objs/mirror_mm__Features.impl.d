lib/mm/features.ml: Fractal Gabor Glcm Histogram Image List Mrf Segment String
