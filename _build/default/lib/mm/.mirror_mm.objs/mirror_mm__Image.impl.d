lib/mm/image.ml: Array Float Printf
