lib/mm/mrf.mli: Image Segment
