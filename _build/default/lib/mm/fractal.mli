(** Fractal texture features (MeasTex reference algorithm 4).

    Differential box counting estimates the fractal dimension of the
    region's luminance surface; lacunarity (variance-over-mean-squared
    of box masses at a fixed scale) measures gappiness.  Feature vector
    is [dimension; lacunarity]. *)

val dims : int
(** 2. *)

val box_counts : Image.t -> Segment.region -> (int * float) list
(** [(box_size, N_r)] pairs used in the regression — exposed for
    tests. *)

val extract : Image.t -> Segment.region -> float array
(** [fractal_dimension; lacunarity].  Smooth surfaces approach 2.0,
    rough ones 3.0; degenerate regions return [2.0; 0.0]. *)
