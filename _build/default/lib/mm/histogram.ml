module Vecmath = Mirror_util.Vecmath

let bin v bins =
  let b = int_of_float (v *. Float.of_int bins) in
  max 0 (min (bins - 1) b)

let rgb_bins = 4
let rgb_dims = rgb_bins * rgb_bins * rgb_bins

let rgb img (r : Segment.region) =
  let h = Array.make rgb_dims 0.0 in
  for y = r.Segment.y to r.Segment.y + r.Segment.h - 1 do
    for x = r.Segment.x to r.Segment.x + r.Segment.w - 1 do
      let pr, pg, pb = Image.get img ~x ~y in
      let i = (bin pr rgb_bins * rgb_bins * rgb_bins) + (bin pg rgb_bins * rgb_bins) + bin pb rgb_bins in
      h.(i) <- h.(i) +. 1.0
    done
  done;
  Vecmath.normalize_l1 h

let hue_bins = 6
let sat_bins = 2
let val_bins = 2
let hsv_dims = hue_bins * sat_bins * val_bins

let hsv img (r : Segment.region) =
  let hist = Array.make hsv_dims 0.0 in
  for y = r.Segment.y to r.Segment.y + r.Segment.h - 1 do
    for x = r.Segment.x to r.Segment.x + r.Segment.w - 1 do
      let hh, ss, vv = Image.rgb_to_hsv (Image.get img ~x ~y) in
      let i = (bin hh hue_bins * sat_bins * val_bins) + (bin ss sat_bins * val_bins) + bin vv val_bins in
      hist.(i) <- hist.(i) +. 1.0
    done
  done;
  Vecmath.normalize_l1 hist
