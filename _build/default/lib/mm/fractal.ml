let dims = 2
let gray_levels = 256.0

let box_counts img (r : Segment.region) =
  let m = min r.Segment.w r.Segment.h in
  let sizes = List.filter (fun s -> s <= m / 2 && s >= 2) [ 2; 3; 4; 6; 8; 12; 16 ] in
  List.map
    (fun s ->
      (* Box height scaled so the grey range maps onto M/s boxes. *)
      let h' = Float.of_int s *. gray_levels /. Float.of_int m in
      let nr = ref 0.0 in
      let bx = ref r.Segment.x in
      while !bx + s <= r.Segment.x + r.Segment.w do
        let by = ref r.Segment.y in
        while !by + s <= r.Segment.y + r.Segment.h do
          let mn = ref infinity and mx = ref neg_infinity in
          for y = !by to !by + s - 1 do
            for x = !bx to !bx + s - 1 do
              let g = Image.gray_at img ~x ~y *. (gray_levels -. 1.0) in
              if g < !mn then mn := g;
              if g > !mx then mx := g
            done
          done;
          let l = Float.of_int (int_of_float (!mn /. h')) in
          let k = Float.of_int (int_of_float (!mx /. h')) in
          nr := !nr +. (k -. l +. 1.0);
          by := !by + s
        done;
        bx := !bx + s
      done;
      (s, !nr))
    sizes

let extract img (r : Segment.region) =
  let counts = box_counts img r in
  if List.length counts < 2 then [| 2.0; 0.0 |]
  else begin
    (* Least-squares slope of log N_r against log (1/r). *)
    let m = Float.of_int (min r.Segment.w r.Segment.h) in
    let points =
      List.filter_map
        (fun (s, nr) ->
          if nr <= 0.0 then None
          else Some (log (m /. Float.of_int s), log nr))
        counts
    in
    let dim =
      match points with
      | [] | [ _ ] -> 2.0
      | _ ->
        let xs = Array.of_list (List.map fst points) in
        let ys = Array.of_list (List.map snd points) in
        let mx = Mirror_util.Stat.mean xs and my = Mirror_util.Stat.mean ys in
        let num = ref 0.0 and den = ref 0.0 in
        Array.iteri
          (fun i x ->
            num := !num +. ((x -. mx) *. (ys.(i) -. my));
            den := !den +. ((x -. mx) *. (x -. mx)))
          xs;
        if !den < 1e-12 then 2.0 else !num /. !den
    in
    (* Lacunarity at box size 4 from box mass statistics. *)
    let s = 4 in
    let masses = ref [] in
    if min r.Segment.w r.Segment.h >= s then begin
      let bx = ref r.Segment.x in
      while !bx + s <= r.Segment.x + r.Segment.w do
        let by = ref r.Segment.y in
        while !by + s <= r.Segment.y + r.Segment.h do
          let mass = ref 0.0 in
          for y = !by to !by + s - 1 do
            for x = !bx to !bx + s - 1 do
              mass := !mass +. Image.gray_at img ~x ~y
            done
          done;
          masses := !mass :: !masses;
          by := !by + s
        done;
        bx := !bx + s
      done
    end;
    let lac =
      match !masses with
      | [] | [ _ ] -> 0.0
      | ms ->
        let arr = Array.of_list ms in
        let mean = Mirror_util.Stat.mean arr in
        if mean < 1e-12 then 0.0 else Mirror_util.Stat.variance arr /. (mean *. mean)
    in
    [| dim; lac |]
  end
