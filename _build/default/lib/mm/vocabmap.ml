let term ~space cluster = Printf.sprintf "%s_%d" space cluster

let parse_term s =
  match String.rindex_opt s '_' with
  | None -> None
  | Some i -> (
    let space = String.sub s 0 i in
    let num = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt num with
    | Some c when c >= 0 && space <> "" -> Some (space, c)
    | _ -> None)

let soft_words model ~space vectors =
  let totals = Array.make model.Autoclass.k 0.0 in
  Array.iter
    (fun v ->
      let p = Autoclass.posterior model v in
      Array.iteri (fun c w -> totals.(c) <- totals.(c) +. w) p)
    vectors;
  Array.to_list totals
  |> List.mapi (fun c w -> (term ~space c, w))
  |> List.filter (fun (_, w) -> w > 1e-6)

let hard_words model ~space vectors =
  let totals = Array.make model.Autoclass.k 0 in
  Array.iter
    (fun v ->
      let c = Autoclass.classify model v in
      totals.(c) <- totals.(c) + 1)
    vectors;
  Array.to_list totals
  |> List.mapi (fun c n -> (term ~space c, Float.of_int n))
  |> List.filter (fun (_, w) -> w > 0.0)
