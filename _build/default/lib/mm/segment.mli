(** Image segmentation daemon logic.

    "One of the daemons segments the images" — this module is that
    daemon's algorithm: a quadtree split on colour variance followed by
    a greedy merge of adjacent regions with similar mean colour.  The
    output regions tile the image exactly (tested as an invariant). *)

type region = { x : int; y : int; w : int; h : int }
(** Axis-aligned pixel rectangle; [w] and [h] are at least 1. *)

type params = {
  var_threshold : float;  (** Split while summed channel variance exceeds this. *)
  min_size : int;  (** Do not split below this edge length. *)
  merge_threshold : float;  (** Merge adjacent regions whose mean-colour distance is below this. *)
}

val default_params : params
(** var_threshold = 0.02, min_size = 8, merge_threshold = 0.08. *)

val split : ?params:params -> Image.t -> region list
(** Quadtree phase only. *)

val segment : ?params:params -> Image.t -> region list list
(** Full segmentation: quadtree then merge; each inner list is one
    segment (a set of rectangles).  Segments are disjoint and cover the
    image. *)

val segment_flat : ?params:params -> Image.t -> region list
(** {!segment} with each merged segment replaced by its bounding
    rectangles' list flattened — convenient when a consumer only needs
    rectangular patches (each rectangle tagged by its segment is lost;
    use {!segment} when segment identity matters). *)

val region_pixels : region -> int
(** Area in pixels. *)

val mean_color : Image.t -> region -> float * float * float
(** Channel means over a region. *)

val color_variance : Image.t -> region -> float
(** Sum of the three channel variances over a region. *)

val crop : Image.t -> region -> Image.t
(** Copy a region into a fresh image (used to feed extractors that
    want a rectangular patch). *)
