type t = {
  width : int;
  height : int;
  red : float array;
  green : float array;
  blue : float array;
}

let create ~width ~height =
  if width <= 0 || height <= 0 then invalid_arg "Image.create: non-positive dimensions";
  let n = width * height in
  { width; height; red = Array.make n 0.0; green = Array.make n 0.0; blue = Array.make n 0.0 }

let clamp v = Float.min 1.0 (Float.max 0.0 v)

let index img ~x ~y =
  if x < 0 || x >= img.width || y < 0 || y >= img.height then
    invalid_arg (Printf.sprintf "Image: pixel (%d,%d) out of %dx%d" x y img.width img.height);
  (y * img.width) + x

let get img ~x ~y =
  let i = index img ~x ~y in
  (img.red.(i), img.green.(i), img.blue.(i))

let set img ~x ~y (r, g, b) =
  let i = index img ~x ~y in
  img.red.(i) <- clamp r;
  img.green.(i) <- clamp g;
  img.blue.(i) <- clamp b

let init ~width ~height f =
  let img = create ~width ~height in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      set img ~x ~y (f ~x ~y)
    done
  done;
  img

let luminance r g b = (0.299 *. r) +. (0.587 *. g) +. (0.114 *. b)

let gray img =
  Array.init (img.width * img.height) (fun i ->
      luminance img.red.(i) img.green.(i) img.blue.(i))

let gray_at img ~x ~y =
  let i = index img ~x ~y in
  luminance img.red.(i) img.green.(i) img.blue.(i)

let mean_color img =
  let n = Float.of_int (img.width * img.height) in
  let sum a = Array.fold_left ( +. ) 0.0 a in
  (sum img.red /. n, sum img.green /. n, sum img.blue /. n)

let npixels img = img.width * img.height

let rgb_to_hsv (r, g, b) =
  let mx = Float.max r (Float.max g b) and mn = Float.min r (Float.min g b) in
  let d = mx -. mn in
  let h =
    if d = 0.0 then 0.0
    else if mx = r then Float.rem (((g -. b) /. d) +. 6.0) 6.0 /. 6.0
    else if mx = g then (((b -. r) /. d) +. 2.0) /. 6.0
    else (((r -. g) /. d) +. 4.0) /. 6.0
  in
  let s = if mx = 0.0 then 0.0 else d /. mx in
  (h, s, mx)
