(** k-means clustering (used to initialise the AutoClass substitute and
    as a baseline clusterer in its own right). *)

type result = {
  centroids : float array array;  (** [k] centroids. *)
  assign : int array;  (** Cluster index per input point. *)
  inertia : float;  (** Sum of squared distances to assigned centroids. *)
  iterations : int;  (** Lloyd iterations actually run. *)
}

val plusplus_init :
  Mirror_util.Prng.t -> k:int -> float array array -> float array array
(** k-means++ seeding (Arthur & Vassilvitskii).  Requires at least one
    point; [k] is clamped to the number of points. *)

val run :
  Mirror_util.Prng.t ->
  k:int ->
  ?max_iter:int ->
  float array array ->
  result
(** Lloyd's algorithm from a k-means++ seed.  [max_iter] defaults to
    50.  Empty clusters are re-seeded on the farthest point.
    @raise Invalid_argument on an empty input or non-positive [k]. *)
