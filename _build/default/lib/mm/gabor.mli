(** Gabor filter-bank texture features (MeasTex reference algorithm 1).

    A bank of 4 orientations x 2 wavelengths of real Gabor kernels is
    convolved over the region's luminance; the feature vector holds the
    mean absolute response and its standard deviation per filter
    (16 dimensions). *)

val dims : int
(** 4 orientations x 2 wavelengths x (mean, stddev) = 16. *)

val orientations : float array
(** Bank orientations in radians. *)

val wavelengths : float array
(** Bank wavelengths in pixels. *)

val kernel : theta:float -> wavelength:float -> float array array
(** The (odd-sized, square) real Gabor kernel for one bank member —
    exposed for tests. *)

val extract : Image.t -> Segment.region -> float array
(** Feature vector for a region. *)
