let pi = 4.0 *. atan 1.0

let orientations = [| 0.0; pi /. 4.0; pi /. 2.0; 3.0 *. pi /. 4.0 |]
let wavelengths = [| 4.0; 8.0 |]
let dims = Array.length orientations * Array.length wavelengths * 2

let kernel_radius = 4 (* 9x9 kernels *)

let kernel ~theta ~wavelength =
  let sigma = 0.56 *. wavelength in
  let gamma = 0.5 in
  let size = (2 * kernel_radius) + 1 in
  let k = Array.make_matrix size size 0.0 in
  for j = 0 to size - 1 do
    for i = 0 to size - 1 do
      let x = Float.of_int (i - kernel_radius) and y = Float.of_int (j - kernel_radius) in
      let xr = (x *. cos theta) +. (y *. sin theta) in
      let yr = (-.x *. sin theta) +. (y *. cos theta) in
      let envelope = exp (-.((xr *. xr) +. (gamma *. gamma *. yr *. yr)) /. (2.0 *. sigma *. sigma)) in
      k.(j).(i) <- envelope *. cos (2.0 *. pi *. xr /. wavelength)
    done
  done;
  (* Zero-mean the kernel so flat patches give no response. *)
  let sum = Array.fold_left (fun acc row -> Array.fold_left ( +. ) acc row) 0.0 k in
  let n = Float.of_int (size * size) in
  Array.map (Array.map (fun v -> v -. (sum /. n))) k

let bank = lazy (
  Array.to_list orientations
  |> List.concat_map (fun theta ->
         Array.to_list wavelengths
         |> List.map (fun wavelength -> kernel ~theta ~wavelength)))

let extract img (r : Segment.region) =
  let kernels = Lazy.force bank in
  let x0 = r.Segment.x and y0 = r.Segment.y and w = r.Segment.w and h = r.Segment.h in
  (* Luminance patch with clamped borders so small regions still work. *)
  let at x y =
    let cx = max x0 (min (x0 + w - 1) x) and cy = max y0 (min (y0 + h - 1) y) in
    Image.gray_at img ~x:cx ~y:cy
  in
  let feats = Array.make dims 0.0 in
  List.iteri
    (fun ki k ->
      let sum = ref 0.0 and sumsq = ref 0.0 in
      let count = w * h in
      for y = y0 to y0 + h - 1 do
        for x = x0 to x0 + w - 1 do
          let resp = ref 0.0 in
          for dj = -kernel_radius to kernel_radius do
            for di = -kernel_radius to kernel_radius do
              resp := !resp +. (k.(dj + kernel_radius).(di + kernel_radius) *. at (x + di) (y + dj))
            done
          done;
          let m = Float.abs !resp in
          sum := !sum +. m;
          sumsq := !sumsq +. (m *. m)
        done
      done;
      let n = Float.of_int count in
      let mean = !sum /. n in
      let var = Float.max 0.0 ((!sumsq /. n) -. (mean *. mean)) in
      feats.(2 * ki) <- mean;
      feats.((2 * ki) + 1) <- sqrt var)
    kernels;
  feats
