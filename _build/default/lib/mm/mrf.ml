module Vecmath = Mirror_util.Vecmath
module Stat = Mirror_util.Stat

let dims = 5
let nparams = 5 (* 4 neighbours + bias *)

let extract img (r : Segment.region) =
  let x0 = r.Segment.x and y0 = r.Segment.y and w = r.Segment.w and h = r.Segment.h in
  let at x y = Image.gray_at img ~x ~y in
  let fallback () =
    let gs = ref [] in
    for y = y0 to y0 + h - 1 do
      for x = x0 to x0 + w - 1 do
        gs := at x y :: !gs
      done
    done;
    let arr = Array.of_list !gs in
    [| 0.0; 0.0; 0.0; 0.0; (if Array.length arr = 0 then 0.0 else Stat.stddev arr) |]
  in
  if w < 3 || h < 3 then fallback ()
  else begin
    (* Normal equations: (X^T X) a = X^T y. *)
    let xtx = Array.make_matrix nparams nparams 0.0 in
    let xty = Array.make nparams 0.0 in
    let n = ref 0 in
    for y = y0 + 1 to y0 + h - 1 do
      for x = x0 + 1 to x0 + w - 2 do
        let row = [| at (x - 1) y; at x (y - 1); at (x - 1) (y - 1); at (x + 1) (y - 1); 1.0 |] in
        let target = at x y in
        incr n;
        for i = 0 to nparams - 1 do
          for j = 0 to nparams - 1 do
            xtx.(i).(j) <- xtx.(i).(j) +. (row.(i) *. row.(j))
          done;
          xty.(i) <- xty.(i) +. (row.(i) *. target)
        done
      done
    done;
    if !n < nparams then fallback ()
    else begin
      (* Ridge term: perfectly collinear textures (e.g. exact linear
         gradients) otherwise make the normal equations singular. *)
      for i = 0 to nparams - 1 do
        xtx.(i).(i) <- xtx.(i).(i) +. 1e-6
      done;
      match Vecmath.solve xtx xty with
      | None -> fallback ()
      | Some a ->
        (* Residual stddev. *)
        let ss = ref 0.0 in
        for y = y0 + 1 to y0 + h - 1 do
          for x = x0 + 1 to x0 + w - 2 do
            let row =
              [| at (x - 1) y; at x (y - 1); at (x - 1) (y - 1); at (x + 1) (y - 1); 1.0 |]
            in
            let pred = Vecmath.dot row a in
            let e = at x y -. pred in
            ss := !ss +. (e *. e)
          done
        done;
        [| a.(0); a.(1); a.(2); a.(3); sqrt (!ss /. Float.of_int !n) |]
    end
  end
