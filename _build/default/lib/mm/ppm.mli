(** PPM (portable pixmap) image serialisation.

    The media server of the paper is a web server holding the actual
    footage; this module gives it a concrete wire format: binary P6
    with 8-bit channels.  Round-tripping quantises each channel to
    1/255. *)

val encode : Image.t -> string
(** Binary P6 bytes. *)

val decode : string -> (Image.t, string) result
(** Parse P6 bytes (plain P3 is also accepted). *)

val save : Image.t -> string -> (unit, string) result
(** Write to a file. *)

val load : string -> (Image.t, string) result
(** Read from a file. *)
