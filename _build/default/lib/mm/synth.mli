(** Synthetic image corpus with ground truth.

    The paper's demo crawled web images, some with manual annotations.
    Offline we generate images procedurally: each image is composed of
    regions drawn from a small set of texture classes rendered in named
    colour palettes, and the (optional) caption is derived from the
    classes and palettes present, plus noise words.  Ground truth
    (which class/palette each region has) is kept alongside, which is
    what lets the experiment harness score retrieval quality. *)

type texture_class = Stripes | Checker | Blobs | Gradient | Speckle | Waves

val all_classes : texture_class list
(** Every texture class, in a fixed order. *)

val class_name : texture_class -> string
(** Stable lower-case name ("stripes", …). *)

val class_words : texture_class -> string list
(** Annotation vocabulary evoked by the class; the first word is the
    canonical one. *)

val palette_count : int
(** Number of built-in colour palettes. *)

val palette_name : int -> string
(** Name of palette [i] ("red", "blue", …), also used as a caption
    word. @raise Invalid_argument when out of range. *)

type region_truth = {
  x : int;
  y : int;
  w : int;
  h : int;
  cls : texture_class;
  palette : int;
}
(** One ground-truth region of a scene. *)

type scene = {
  image : Image.t;
  truth : region_truth list;
  caption : string list option;  (** [None] for unannotated images. *)
}

val render_texture :
  Mirror_util.Prng.t -> width:int -> height:int -> texture_class -> int -> Image.t
(** Render a single-class image in the given palette. *)

val scene :
  Mirror_util.Prng.t ->
  ?width:int ->
  ?height:int ->
  ?regions:int ->
  ?annotated:bool ->
  unit ->
  scene
(** One random scene of [regions] (default 2) vertical/horizontal
    panels, each with its own class and palette.  When [annotated]
    (default true) a caption is generated from the region truths with
    mild word noise. *)

val corpus :
  Mirror_util.Prng.t ->
  n:int ->
  ?width:int ->
  ?height:int ->
  ?annotated_fraction:float ->
  unit ->
  scene array
(** [n] scenes; roughly [annotated_fraction] (default 0.7) of them
    carry captions — the paper's "some of the images in the library are
    annotated". *)

val relevant : scene -> query_words:string list -> bool
(** Ground-truth relevance: does any region's class or palette
    vocabulary intersect the query words?  Used by the quality
    experiments. *)
