type t = {
  name : string;
  dims : int;
  extract : Image.t -> Segment.region -> float array;
}

let rgb_histogram = { name = "rgb"; dims = Histogram.rgb_dims; extract = Histogram.rgb }
let hsv_histogram = { name = "hsv"; dims = Histogram.hsv_dims; extract = Histogram.hsv }
let gabor = { name = "gabor"; dims = Gabor.dims; extract = Gabor.extract }
let glcm = { name = "glcm"; dims = Glcm.dims; extract = Glcm.extract }
let mrf = { name = "mrf"; dims = Mrf.dims; extract = Mrf.extract }
let fractal = { name = "fractal"; dims = Fractal.dims; extract = Fractal.extract }

let all = [ rgb_histogram; hsv_histogram; gabor; glcm; mrf; fractal ]

let find name = List.find_opt (fun e -> String.equal e.name name) all
