(** From clusters to "visual words".

    "We further use the identified clusters as if they are words in
    text retrieval; they become the basic blocks of 'meaning' for
    multimedia information retrieval."  This module names the clusters
    of each feature space (e.g. ["gabor_21"]) and converts a bag of
    segment feature vectors into a term-frequency bag over those
    names — the image-side CONTREP content. *)

val term : space:string -> int -> string
(** ["<space>_<cluster>"], e.g. [term ~space:"gabor" 21 = "gabor_21"]. *)

val parse_term : string -> (string * int) option
(** Inverse of {!term} ([None] for non-visual words). *)

val soft_words :
  Autoclass.model -> space:string -> float array array -> (string * float) list
(** Term frequencies as summed posteriors per cluster over the given
    vectors (smooth evidence, AutoClass-style).  Clusters with total
    posterior below 1e-6 are omitted. *)

val hard_words :
  Autoclass.model -> space:string -> float array array -> (string * float) list
(** Term frequencies by hard classification counts. *)
