(** Atomic values of the binary-relational kernel.

    The physical data model knows five base types, mirroring the Monet
    atoms the Mirror DBMS inherited at its logical level: integers,
    double-precision floats, strings, booleans and object identifiers
    (oids).  Every cell of every BAT column holds exactly one atom; the
    kernel has no NULL — operators that could produce missing values
    (outer joins, empty-group aggregates) take an explicit default
    atom instead. *)

type t =
  | Int of int
  | Flt of float
  | Str of string
  | Bool of bool
  | Oid of int

type ty = TInt | TFlt | TStr | TBool | TOid

val type_of : t -> ty
(** The base type of an atom. *)

val ty_name : ty -> string
(** Lower-case type name ("int", "flt", "str", "bool", "oid"). *)

val equal : t -> t -> bool
(** Structural equality.  Atoms of different base types are never
    equal. *)

val compare : t -> t -> int
(** Total order: first by base type, then by value.  Float comparison
    uses [Float.compare], so [nan] is ordered deterministically. *)

val hash : t -> int
(** Hash compatible with {!equal}. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering (strings are quoted). *)

val to_string : t -> string
(** [Format.asprintf "%a" pp]. *)

val parse : ty -> string -> (t, string) result
(** Parse the textual form produced by {!to_string} back into an atom of
    the requested type (used by the catalog dump/load round-trip). *)

val as_int : t -> int
(** Value of an [Int] atom. @raise Invalid_argument otherwise. *)

val as_float : t -> float
(** Value of a [Flt] atom; [Int] atoms are widened.
    @raise Invalid_argument otherwise. *)

val as_string : t -> string
(** Value of a [Str] atom. @raise Invalid_argument otherwise. *)

val as_bool : t -> bool
(** Value of a [Bool] atom. @raise Invalid_argument otherwise. *)

val as_oid : t -> int
(** Value of an [Oid] atom. @raise Invalid_argument otherwise. *)
