type t = (string, Bat.t) Hashtbl.t

let create () : t = Hashtbl.create 64
let put t name b = Hashtbl.replace t name b
let get t name = Hashtbl.find t name
let find t name = Hashtbl.find_opt t name
let mem t name = Hashtbl.mem t name
let remove t name = Hashtbl.remove t name
let names t = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])
let cardinality t = Hashtbl.length t
let total_rows t = Hashtbl.fold (fun _ b acc -> acc + Bat.count b) t 0

(* Snapshot format, one entry per stanza:
     %bat <name-with-%XX-escapes> <hty> <tty> <rows>
     <head atom>\t<tail atom>        (rows lines)
   Atom rendering reuses Atom.to_string / Atom.parse. *)

let escape_name name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      if c = ' ' || c = '%' || c = '\n' || c = '\t' then
        Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
      else Buffer.add_char buf c)
    name;
  Buffer.contents buf

let unescape_name s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ String.sub s (i + 1) 2)));
        go (i + 3)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let dump t oc =
  List.iter
    (fun name ->
      let b = get t name in
      Printf.fprintf oc "%%bat %s %s %s %d\n" (escape_name name)
        (Atom.ty_name (Bat.hty b)) (Atom.ty_name (Bat.tty b)) (Bat.count b);
      Bat.iter
        (fun h tl -> Printf.fprintf oc "%s\t%s\n" (Atom.to_string h) (Atom.to_string tl))
        b)
    (names t)

let ty_of_name = function
  | "int" -> Ok Atom.TInt
  | "flt" -> Ok Atom.TFlt
  | "str" -> Ok Atom.TStr
  | "bool" -> Ok Atom.TBool
  | "oid" -> Ok Atom.TOid
  | s -> Error (Printf.sprintf "unknown type %S" s)

let ( let* ) = Result.bind

let load ic =
  let t = create () in
  let rec read_entries () =
    match input_line ic with
    | exception End_of_file -> Ok t
    | line -> (
      match String.split_on_char ' ' line with
      | [ "%bat"; name; htys; ttys; rows ] ->
        let* hty = ty_of_name htys in
        let* tty = ty_of_name ttys in
        let* nrows =
          match int_of_string_opt rows with
          | Some n when n >= 0 -> Ok n
          | _ -> Error (Printf.sprintf "bad row count %S" rows)
        in
        let hb = Column.Builder.create hty and tb = Column.Builder.create tty in
        let rec read_rows k =
          if k = 0 then Ok ()
          else
            match input_line ic with
            | exception End_of_file -> Error "truncated snapshot"
            | row -> (
              match String.index_opt row '\t' with
              | None -> Error (Printf.sprintf "malformed row %S" row)
              | Some tab ->
                let hs = String.sub row 0 tab in
                let ts = String.sub row (tab + 1) (String.length row - tab - 1) in
                let* h = Atom.parse hty hs in
                let* tl = Atom.parse tty ts in
                Column.Builder.add hb h;
                Column.Builder.add tb tl;
                read_rows (k - 1))
        in
        let* () = read_rows nrows in
        put t (unescape_name name)
          (Bat.make (Column.Builder.finish hb) (Column.Builder.finish tb));
        read_entries ()
      | _ -> Error (Printf.sprintf "malformed header %S" line))
  in
  read_entries ()

let save_file t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> dump t oc)

let load_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> load ic)
