type t =
  | Int of int
  | Flt of float
  | Str of string
  | Bool of bool
  | Oid of int

type ty = TInt | TFlt | TStr | TBool | TOid

let type_of = function
  | Int _ -> TInt
  | Flt _ -> TFlt
  | Str _ -> TStr
  | Bool _ -> TBool
  | Oid _ -> TOid

let ty_name = function
  | TInt -> "int"
  | TFlt -> "flt"
  | TStr -> "str"
  | TBool -> "bool"
  | TOid -> "oid"

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Flt x, Flt y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> x = y
  | Oid x, Oid y -> x = y
  | (Int _ | Flt _ | Str _ | Bool _ | Oid _), _ -> false

let rank = function
  | Int _ -> 0
  | Flt _ -> 1
  | Str _ -> 2
  | Bool _ -> 3
  | Oid _ -> 4

let compare a b =
  match (a, b) with
  | Int x, Int y -> Stdlib.compare x y
  | Flt x, Flt y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | Oid x, Oid y -> Stdlib.compare x y
  | _, _ -> Stdlib.compare (rank a) (rank b)

let hash = function
  | Int x -> Hashtbl.hash (0, x)
  | Flt x -> Hashtbl.hash (1, x)
  | Str x -> Hashtbl.hash (2, x)
  | Bool x -> Hashtbl.hash (3, x)
  | Oid x -> Hashtbl.hash (4, x)

let pp ppf = function
  | Int x -> Format.pp_print_int ppf x
  | Flt x -> Format.fprintf ppf "%.12g" x
  | Str x -> Format.fprintf ppf "%S" x
  | Bool x -> Format.pp_print_bool ppf x
  | Oid x -> Format.fprintf ppf "@%d" x

let to_string a = Format.asprintf "%a" pp a

let parse ty s =
  let fail () = Error (Printf.sprintf "cannot parse %S as %s" s (ty_name ty)) in
  match ty with
  | TInt -> ( match int_of_string_opt s with Some v -> Ok (Int v) | None -> fail ())
  | TFlt -> ( match float_of_string_opt s with Some v -> Ok (Flt v) | None -> fail ())
  | TBool -> ( match bool_of_string_opt s with Some v -> Ok (Bool v) | None -> fail ())
  | TOid ->
    if String.length s > 1 && s.[0] = '@' then
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some v -> Ok (Oid v)
      | None -> fail ()
    else fail ()
  | TStr -> ( try Ok (Str (Scanf.sscanf s "%S" (fun x -> x))) with Scanf.Scan_failure _ | End_of_file -> fail ())

let wrong got want =
  invalid_arg (Printf.sprintf "Atom: expected %s, got %s" want (ty_name (type_of got)))

let as_int = function Int x -> x | a -> wrong a "int"

let as_float = function
  | Flt x -> x
  | Int x -> Float.of_int x
  | a -> wrong a "flt"

let as_string = function Str x -> x | a -> wrong a "str"
let as_bool = function Bool x -> x | a -> wrong a "bool"
let as_oid = function Oid x -> x | a -> wrong a "oid"
