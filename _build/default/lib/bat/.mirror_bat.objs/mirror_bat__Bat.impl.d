lib/bat/bat.ml: Array Atom Bool Column Float Format Hashtbl Int List Option Printf String
