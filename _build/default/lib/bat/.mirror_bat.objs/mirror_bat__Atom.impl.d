lib/bat/atom.ml: Float Format Hashtbl Printf Scanf Stdlib String
