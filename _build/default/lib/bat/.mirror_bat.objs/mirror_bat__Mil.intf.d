lib/bat/mil.mli: Atom Bat Catalog Format
