lib/bat/bat.mli: Atom Column Format
