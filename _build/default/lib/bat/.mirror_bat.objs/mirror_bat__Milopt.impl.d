lib/bat/milopt.ml: Atom Bat List Mil
