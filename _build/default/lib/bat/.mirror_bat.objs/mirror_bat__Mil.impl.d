lib/bat/mil.ml: Atom Bat Catalog Float Format Hashtbl List Printf String Sys
