lib/bat/milopt.mli: Mil
