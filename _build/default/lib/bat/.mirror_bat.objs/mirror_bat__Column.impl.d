lib/bat/column.ml: Array Atom Float List Printf
