lib/bat/column.mli: Atom
