lib/bat/catalog.mli: Bat
