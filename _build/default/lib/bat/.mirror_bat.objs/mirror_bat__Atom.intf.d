lib/bat/atom.mli: Format
