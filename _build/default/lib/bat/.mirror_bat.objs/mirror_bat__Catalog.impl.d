lib/bat/catalog.ml: Atom Bat Buffer Char Column Fun Hashtbl List Printf Result String
