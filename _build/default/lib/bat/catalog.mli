(** The BAT catalog: the kernel's persistent name space.

    Every materialised extent, statistics table and index lives here
    under a hierarchical name such as ["ImageLibrary#in"] or
    ["ImageLibrary/annotation@stats/df"].  Plans refer to catalog
    entries by name ({!Mil.Get}), which is what decouples the logical
    algebra from physical storage. *)

type t
(** A mutable catalog. *)

val create : unit -> t
(** Fresh empty catalog. *)

val put : t -> string -> Bat.t -> unit
(** Bind (or rebind) a name. *)

val get : t -> string -> Bat.t
(** Look a name up. @raise Not_found if unbound. *)

val find : t -> string -> Bat.t option
(** Optional lookup. *)

val mem : t -> string -> bool
(** Name bound? *)

val remove : t -> string -> unit
(** Unbind (no-op when unbound). *)

val names : t -> string list
(** All bound names, sorted. *)

val cardinality : t -> int
(** Number of bound names. *)

val total_rows : t -> int
(** Sum of row counts over all entries (storage-size proxy used in
    reports). *)

val dump : t -> out_channel -> unit
(** Write a textual snapshot of the whole catalog. *)

val load : in_channel -> (t, string) result
(** Read back a snapshot produced by {!dump}. *)

val save_file : t -> string -> unit
(** {!dump} to a file path. *)

val load_file : string -> (t, string) result
(** {!load} from a file path. *)
