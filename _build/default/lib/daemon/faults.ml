let failure_message = "injected fault"

let flaky g ~rate (d : Daemon.t) =
  {
    d with
    Daemon.handle =
      (fun ctx m ->
        if Mirror_util.Prng.float g 1.0 < rate then failwith failure_message
        else d.Daemon.handle ctx m);
  }

let broken (d : Daemon.t) =
  { d with Daemon.handle = (fun _ _ -> failwith failure_message) }
