(** Failure injection for the distributed architecture.

    An open multi-party architecture must tolerate flaky parties; the
    orchestrator's retry/dead-letter behaviour is tested by wrapping
    daemons with these combinators. *)

val flaky : Mirror_util.Prng.t -> rate:float -> Daemon.t -> Daemon.t
(** Fails (raises) with probability [rate] per message, otherwise
    behaves like the wrapped daemon. *)

val broken : Daemon.t -> Daemon.t
(** Always fails. *)

val failure_message : string
(** The message carried by injected failures (stable for tests). *)
