(** The distributed data dictionary of figure 1.

    Records which extents exist, their (textual) schemas, and which
    party produced each schema version — the daemons evolve the
    ImageLibrary schema into ImageLibraryInternal, and the dictionary
    is where that evolution is visible. *)

type t

val create : unit -> t
(** Empty dictionary. *)

val register : t -> name:string -> schema:string -> owner:string -> unit
(** Register a new extent. @raise Invalid_argument when the name is
    taken. *)

val evolve : t -> name:string -> schema:string -> by:string -> unit
(** Append a schema version for an existing extent.
    @raise Not_found for unknown extents. *)

val schema_of : t -> string -> string option
(** Latest schema of an extent. *)

val history : t -> string -> (string * string) list
(** All (schema, owner) versions, oldest first; empty for unknown
    names. *)

val extents : t -> string list
(** Registered extents, sorted. *)
