(** The media server of figure 1 ("the media server is a web server"):
    multimedia footage addressed by URL.  Offline, it is an in-memory
    URL -> image store; the metadata database never copies the footage,
    only its URLs — exactly the paper's separation between meta data
    and media. *)

type t

val create : unit -> t
(** Empty server. *)

val put : t -> url:string -> Mirror_mm.Image.t -> unit
(** Publish footage under a URL (rebinding allowed). *)

val get : t -> string -> Mirror_mm.Image.t option
(** Fetch by URL. *)

val urls : t -> string list
(** All published URLs, sorted. *)

val count : t -> int
(** Number of published objects. *)
