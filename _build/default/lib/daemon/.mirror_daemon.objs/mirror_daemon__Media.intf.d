lib/daemon/media.mli: Mirror_mm
