lib/daemon/store.ml: Hashtbl List Mirror_mm Mirror_thesaurus Option String
