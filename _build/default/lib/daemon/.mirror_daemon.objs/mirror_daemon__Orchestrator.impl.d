lib/daemon/orchestrator.ml: Bus Daemon Dictionary Hashtbl List Media Mirror_util Option Standard Store String Sys
