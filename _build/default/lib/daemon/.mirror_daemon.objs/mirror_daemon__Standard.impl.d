lib/daemon/standard.ml: Array Bus Daemon Dictionary List Media Mirror_ir Mirror_mm Mirror_thesaurus Mirror_util Printf Store String
