lib/daemon/daemon.ml: Bus Dictionary Media Store
