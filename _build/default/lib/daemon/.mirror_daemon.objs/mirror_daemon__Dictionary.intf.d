lib/daemon/dictionary.mli:
