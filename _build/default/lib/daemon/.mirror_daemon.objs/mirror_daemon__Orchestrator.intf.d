lib/daemon/orchestrator.mli: Bus Daemon Mirror_mm
