lib/daemon/bus.mli:
