lib/daemon/standard.mli: Daemon Mirror_mm
