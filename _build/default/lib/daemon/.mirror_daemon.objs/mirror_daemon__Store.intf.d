lib/daemon/store.mli: Mirror_mm Mirror_thesaurus
