lib/daemon/dictionary.ml: Hashtbl List Option Printf String
