lib/daemon/bus.ml: Hashtbl List Option Queue
