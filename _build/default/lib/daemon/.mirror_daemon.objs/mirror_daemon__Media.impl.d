lib/daemon/media.ml: Hashtbl List Mirror_mm String
