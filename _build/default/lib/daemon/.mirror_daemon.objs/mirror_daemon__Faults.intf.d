lib/daemon/faults.mli: Daemon Mirror_util
