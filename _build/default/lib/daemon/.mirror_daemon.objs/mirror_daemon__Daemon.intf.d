lib/daemon/daemon.mli: Bus Dictionary Media Store
