lib/daemon/faults.ml: Daemon Mirror_util
