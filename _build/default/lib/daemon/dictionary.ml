type t = (string, (string * string) list) Hashtbl.t
(* name -> (schema, owner) versions, newest first *)

let create () : t = Hashtbl.create 16

let register t ~name ~schema ~owner =
  if Hashtbl.mem t name then
    invalid_arg (Printf.sprintf "Dictionary.register: extent %S already exists" name);
  Hashtbl.add t name [ (schema, owner) ]

let evolve t ~name ~schema ~by =
  match Hashtbl.find_opt t name with
  | None -> raise Not_found
  | Some versions -> Hashtbl.replace t name ((schema, by) :: versions)

let schema_of t name =
  Option.map (fun versions -> fst (List.hd versions)) (Hashtbl.find_opt t name)

let history t name = List.rev (Option.value ~default:[] (Hashtbl.find_opt t name))

let extents t = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])
