type t = (string, Mirror_mm.Image.t) Hashtbl.t

let create () : t = Hashtbl.create 64
let put t ~url img = Hashtbl.replace t url img
let get t url = Hashtbl.find_opt t url
let urls t = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])
let count t = Hashtbl.length t
