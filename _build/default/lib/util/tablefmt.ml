type align = Left | Right

type t = {
  title : string option;
  cols : (string * align) array;
  mutable rows : string array list; (* reversed *)
}

let create ?title cols =
  if cols = [] then invalid_arg "Tablefmt.create: no columns";
  { title; cols = Array.of_list cols; rows = [] }

let add_row t cells =
  let row = Array.of_list cells in
  if Array.length row <> Array.length t.cols then
    invalid_arg
      (Printf.sprintf "Tablefmt.add_row: %d cells for %d columns" (Array.length row)
         (Array.length t.cols));
  t.rows <- row :: t.rows

let add_rowf t fmt =
  Printf.ksprintf
    (fun s ->
      let row = Array.make (Array.length t.cols) "" in
      row.(0) <- s;
      t.rows <- row :: t.rows)
    fmt

let render t =
  let rows = List.rev t.rows in
  let ncols = Array.length t.cols in
  let width = Array.make ncols 0 in
  Array.iteri (fun i (h, _) -> width.(i) <- String.length h) t.cols;
  List.iter
    (fun row -> Array.iteri (fun i c -> width.(i) <- max width.(i) (String.length c)) row)
    rows;
  let pad i s =
    match snd t.cols.(i) with
    | Left -> Stringx.pad_right width.(i) s
    | Right -> Stringx.pad_left width.(i) s
  in
  let buf = Buffer.create 256 in
  (match t.title with
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n'
  | None -> ());
  let header = Array.mapi (fun i (h, _) -> pad i h) t.cols in
  Buffer.add_string buf (String.concat "  " (Array.to_list header));
  Buffer.add_char buf '\n';
  let rule = Array.mapi (fun i _ -> String.make width.(i) '-') t.cols in
  Buffer.add_string buf (String.concat "  " (Array.to_list rule));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      let cells = Array.mapi (fun i c -> pad i c) row in
      Buffer.add_string buf (String.concat "  " (Array.to_list cells));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_float ?(prec = 3) x = Printf.sprintf "%.*f" prec x
let cell_int n = string_of_int n
