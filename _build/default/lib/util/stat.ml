let require_nonempty a name =
  if Array.length a = 0 then invalid_arg ("Stat." ^ name ^ ": empty array")

let mean a =
  require_nonempty a "mean";
  Array.fold_left ( +. ) 0.0 a /. Float.of_int (Array.length a)

let variance a =
  require_nonempty a "variance";
  let m = mean a in
  Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a
  /. Float.of_int (Array.length a)

let stddev a = sqrt (variance a)

let sorted_copy a =
  let b = Array.copy a in
  Array.sort Float.compare b;
  b

let median a =
  require_nonempty a "median";
  let b = sorted_copy a in
  let n = Array.length b in
  if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0

let percentile a p =
  require_nonempty a "percentile";
  if p < 0.0 || p > 100.0 then invalid_arg "Stat.percentile: p out of range";
  let b = sorted_copy a in
  let n = Array.length b in
  let rank = int_of_float (ceil (p /. 100.0 *. Float.of_int n)) in
  b.(max 0 (min (n - 1) (rank - 1)))

let covariance a b =
  require_nonempty a "covariance";
  if Array.length a <> Array.length b then invalid_arg "Stat.covariance: length mismatch";
  let ma = mean a and mb = mean b in
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. ((a.(i) -. ma) *. (b.(i) -. mb))
  done;
  !acc /. Float.of_int (Array.length a)

let pearson a b =
  let sa = stddev a and sb = stddev b in
  if sa = 0.0 || sb = 0.0 then 0.0 else covariance a b /. (sa *. sb)

let entropy w =
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0.0 then 0.0
  else
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then acc
        else
          let p = x /. total in
          acc -. (p *. log p))
      0.0 w

let histogram ~bins ~lo ~hi a =
  if bins <= 0 then invalid_arg "Stat.histogram: bins must be positive";
  if hi <= lo then invalid_arg "Stat.histogram: empty range";
  let h = Array.make bins 0 in
  let width = (hi -. lo) /. Float.of_int bins in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = max 0 (min (bins - 1) b) in
      h.(b) <- h.(b) + 1)
    a;
  h
