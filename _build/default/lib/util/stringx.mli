(** String helpers missing from the standard library that the lexer,
    tokenizer and report printers share. *)

val is_alpha : char -> bool
(** ASCII letter. *)

val is_digit : char -> bool
(** ASCII digit. *)

val is_alnum : char -> bool
(** ASCII letter or digit. *)

val lowercase_ascii : string -> string
(** Alias of [String.lowercase_ascii], re-exported for locality. *)

val split_on : (char -> bool) -> string -> string list
(** [split_on sep s] splits [s] on maximal runs of separator characters;
    never returns empty fragments. *)

val starts_with : prefix:string -> string -> bool
(** Prefix test. *)

val ends_with : suffix:string -> string -> bool
(** Suffix test. *)

val pad_right : int -> string -> string
(** Pad with spaces on the right to at least the given width. *)

val pad_left : int -> string -> string
(** Pad with spaces on the left to at least the given width. *)

val concat_map : string -> ('a -> string) -> 'a list -> string
(** [concat_map sep f xs] is [String.concat sep (List.map f xs)]. *)
