(** Deterministic pseudo-random number generation.

    Every stochastic component of the system (synthetic data generation,
    k-means++ seeding, EM restarts, workload generators) draws from this
    module so that tests, examples and benchmarks are reproducible from a
    single integer seed.  The generator is splitmix64, which is fast,
    well-distributed and trivially splittable. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator; equal seeds give equal
    streams. *)

val split : t -> t
(** [split g] derives an independent generator from [g], advancing [g].
    Used to give each daemon / worker its own stream. *)

val copy : t -> t
(** [copy g] duplicates the current state without advancing [g]. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int g bound] draws uniformly from [0, bound).  [bound] must be
    positive. *)

val float : t -> float -> float
(** [float g bound] draws uniformly from [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val gaussian : t -> float
(** Standard normal deviate (Box-Muller). *)

val gaussian_mv : t -> mean:float array -> sigma:float array -> float array
(** Diagonal-covariance multivariate normal sample; [sigma] holds the
    per-dimension standard deviations. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_weighted : t -> float array -> int
(** [sample_weighted g w] draws index [i] with probability proportional
    to [w.(i)].  Weights must be non-negative with a positive sum. *)

val perm : t -> int -> int array
(** [perm g n] is a uniform permutation of [0..n-1]. *)
