(** Aligned plain-text tables for the experiment harness.  Every table or
    series the benchmark binary prints goes through this module so the
    output format (and hence EXPERIMENTS.md) stays uniform. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : ?title:string -> (string * align) list -> t
(** [create cols] starts a table with the given column headers and
    alignments. *)

val add_row : t -> string list -> unit
(** Append a row; the row must have as many cells as there are columns. *)

val add_rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** [add_rowf t fmt …] formats one string and adds it as a single-cell
    row spanning the first column — used for footnotes. *)

val render : t -> string
(** Render with a header rule and per-column padding. *)

val print : t -> unit
(** [render] followed by [print_string] and a trailing newline. *)

val cell_float : ?prec:int -> float -> string
(** Format a float with fixed precision (default 3). *)

val cell_int : int -> string
(** Format an int. *)
