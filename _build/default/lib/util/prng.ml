(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014).  State is a single 64-bit counter advanced
   by the golden-gamma; output is a finalizing hash of the counter. *)

type t = { mutable state : int64; mutable spare : float option }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed; spare = None }

let copy g = { state = g.state; spare = g.spare }

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let s = bits64 g in
  { state = mix64 s; spare = None }

(* Top 62 bits as a non-negative OCaml int. *)
let bits g = Int64.to_int (Int64.shift_right_logical (bits64 g) 2)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec draw () =
    let r = bits g in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then draw () else v
  in
  draw ()

let float g bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool g = Int64.logand (bits64 g) 1L = 1L

let gaussian g =
  match g.spare with
  | Some v ->
    g.spare <- None;
    v
  | None ->
    let rec polar () =
      let u = (2.0 *. float g 1.0) -. 1.0 and v = (2.0 *. float g 1.0) -. 1.0 in
      let s = (u *. u) +. (v *. v) in
      if s >= 1.0 || s = 0.0 then polar ()
      else begin
        let m = sqrt (-2.0 *. log s /. s) in
        g.spare <- Some (v *. m);
        u *. m
      end
    in
    polar ()

let gaussian_mv g ~mean ~sigma =
  if Array.length mean <> Array.length sigma then
    invalid_arg "Prng.gaussian_mv: dimension mismatch";
  Array.mapi (fun i mu -> mu +. (sigma.(i) *. gaussian g)) mean

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int g (Array.length a))

let sample_weighted g w =
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0.0 then invalid_arg "Prng.sample_weighted: weights sum to zero";
  let x = float g total in
  let n = Array.length w in
  let rec scan i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. w.(i) in
      if x < acc then i else scan (i + 1) acc
  in
  scan 0 0.0

let perm g n =
  let a = Array.init n (fun i -> i) in
  shuffle g a;
  a
