let check_dim a b name =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vecmath.%s: dimension mismatch (%d vs %d)" name (Array.length a) (Array.length b))

let dot a b =
  check_dim a b "dot";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let dist2 a b =
  check_dim a b "dist2";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let add a b =
  check_dim a b "add";
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_dim a b "sub";
  Array.mapi (fun i x -> x -. b.(i)) a

let scale k a = Array.map (fun x -> k *. x) a

let axpy k x y =
  check_dim x y "axpy";
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (k *. x.(i))
  done

let mean = function
  | [] -> invalid_arg "Vecmath.mean: empty list"
  | v :: _ as vs ->
    let acc = Array.make (Array.length v) 0.0 in
    let n = ref 0 in
    List.iter
      (fun u ->
        incr n;
        axpy 1.0 u acc)
      vs;
    scale (1.0 /. Float.of_int !n) acc

let normalize_l1 a =
  let s = Array.fold_left ( +. ) 0.0 a in
  if s = 0.0 then Array.copy a else scale (1.0 /. s) a

let normalize_l2 a =
  let n = norm2 a in
  if n = 0.0 then Array.copy a else scale (1.0 /. n) a

let cosine a b =
  let na = norm2 a and nb = norm2 b in
  if na = 0.0 || nb = 0.0 then 0.0 else dot a b /. (na *. nb)

let log_sum_exp a =
  if Array.length a = 0 then invalid_arg "Vecmath.log_sum_exp: empty array";
  let m = Array.fold_left Float.max neg_infinity a in
  if m = neg_infinity then neg_infinity
  else m +. log (Array.fold_left (fun acc x -> acc +. exp (x -. m)) 0.0 a)

let arg_best better a =
  if Array.length a = 0 then invalid_arg "Vecmath.arg_best: empty array";
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if better a.(i) a.(!best) then best := i
  done;
  !best

let argmax a = arg_best ( > ) a
let argmin a = arg_best ( < ) a

let solve a b =
  let n = Array.length b in
  if Array.length a <> n || Array.exists (fun row -> Array.length row <> n) a then
    invalid_arg "Vecmath.solve: non-square system";
  let m = Array.map Array.copy a in
  let x = Array.copy b in
  let ok = ref true in
  (for col = 0 to n - 1 do
     (* Partial pivoting. *)
     let pivot = ref col in
     for row = col + 1 to n - 1 do
       if Float.abs m.(row).(col) > Float.abs m.(!pivot).(col) then pivot := row
     done;
     if Float.abs m.(!pivot).(col) < 1e-12 then ok := false
     else begin
       if !pivot <> col then begin
         let tmp = m.(col) in
         m.(col) <- m.(!pivot);
         m.(!pivot) <- tmp;
         let tb = x.(col) in
         x.(col) <- x.(!pivot);
         x.(!pivot) <- tb
       end;
       for row = col + 1 to n - 1 do
         let f = m.(row).(col) /. m.(col).(col) in
         for k = col to n - 1 do
           m.(row).(k) <- m.(row).(k) -. (f *. m.(col).(k))
         done;
         x.(row) <- x.(row) -. (f *. x.(col))
       done
     end
   done);
  if not !ok then None
  else begin
    for row = n - 1 downto 0 do
      for k = row + 1 to n - 1 do
        x.(row) <- x.(row) -. (m.(row).(k) *. x.(k))
      done;
      x.(row) <- x.(row) /. m.(row).(row)
    done;
    Some x
  end
