lib/util/stat.mli:
