lib/util/vecmath.ml: Array Float List Printf
