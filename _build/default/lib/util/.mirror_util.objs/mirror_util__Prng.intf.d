lib/util/prng.mli:
