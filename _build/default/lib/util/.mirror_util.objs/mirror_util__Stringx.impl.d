lib/util/stringx.ml: List String
