lib/util/vecmath.mli:
