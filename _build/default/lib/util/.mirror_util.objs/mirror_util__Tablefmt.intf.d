lib/util/tablefmt.mli:
