lib/util/stringx.mli:
