let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_digit c = c >= '0' && c <= '9'
let is_alnum c = is_alpha c || is_digit c
let lowercase_ascii = String.lowercase_ascii

let split_on sep s =
  let n = String.length s in
  let rec skip i = if i < n && sep s.[i] then skip (i + 1) else i in
  let rec word i = if i < n && not (sep s.[i]) then word (i + 1) else i in
  let rec go i acc =
    let i = skip i in
    if i >= n then List.rev acc
    else
      let j = word i in
      go j (String.sub s i (j - i) :: acc)
  in
  go 0 []

let starts_with ~prefix s =
  let lp = String.length prefix in
  String.length s >= lp && String.sub s 0 lp = prefix

let ends_with ~suffix s =
  let ls = String.length suffix and n = String.length s in
  n >= ls && String.sub s (n - ls) ls = suffix

let pad_right w s =
  if String.length s >= w then s else s ^ String.make (w - String.length s) ' '

let pad_left w s =
  if String.length s >= w then s else String.make (w - String.length s) ' ' ^ s

let concat_map sep f xs = String.concat sep (List.map f xs)
