(** Dense float-vector arithmetic shared by the feature extraction and
    clustering code.  All operations are total on equal-length vectors and
    raise [Invalid_argument] on dimension mismatch. *)

val dot : float array -> float array -> float
(** Inner product. *)

val norm2 : float array -> float
(** Euclidean norm. *)

val dist2 : float array -> float array -> float
(** Squared Euclidean distance. *)

val add : float array -> float array -> float array
(** Element-wise sum (fresh array). *)

val sub : float array -> float array -> float array
(** Element-wise difference (fresh array). *)

val scale : float -> float array -> float array
(** Scalar multiple (fresh array). *)

val axpy : float -> float array -> float array -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val mean : float array list -> float array
(** Component-wise mean of a non-empty list of equal-length vectors. *)

val normalize_l1 : float array -> float array
(** Scale so components sum to 1; the zero vector is returned unchanged. *)

val normalize_l2 : float array -> float array
(** Scale to unit Euclidean norm; the zero vector is returned unchanged. *)

val cosine : float array -> float array -> float
(** Cosine similarity; 0 when either vector is zero. *)

val log_sum_exp : float array -> float
(** Numerically-stable [log (sum_i (exp a_i))]. *)

val argmax : float array -> int
(** Index of the largest component of a non-empty array (first on ties). *)

val argmin : float array -> int
(** Index of the smallest component of a non-empty array (first on ties). *)

val solve : float array array -> float array -> float array option
(** [solve a b] solves the linear system [a x = b] by Gaussian
    elimination with partial pivoting; [None] when [a] is (numerically)
    singular.  [a] and [b] are not modified. *)
