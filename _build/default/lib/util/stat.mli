(** Small descriptive-statistics helpers used by feature extractors,
    the clustering quality metrics and the experiment harness. *)

val mean : float array -> float
(** Arithmetic mean of a non-empty array. *)

val variance : float array -> float
(** Population variance (divide by n) of a non-empty array. *)

val stddev : float array -> float
(** Population standard deviation. *)

val median : float array -> float
(** Median (average of the two middle values for even length); does not
    mutate its argument. *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [0,100], nearest-rank on a sorted copy. *)

val covariance : float array -> float array -> float
(** Population covariance of two equal-length arrays. *)

val pearson : float array -> float array -> float
(** Pearson correlation; 0 when either side is constant. *)

val entropy : float array -> float
(** Shannon entropy (nats) of a histogram of non-negative weights; the
    histogram is normalised internally and zero bins are skipped. *)

val histogram : bins:int -> lo:float -> hi:float -> float array -> int array
(** Fixed-width histogram; values outside [lo,hi) are clamped into the
    first/last bin. *)
