module Bat = Mirror_bat.Bat
module Atom = Mirror_bat.Atom

let gensym_counter = ref 0

let gensym () =
  incr gensym_counter;
  Printf.sprintf "~opt%d" !gensym_counter

(* Capture-avoiding substitution. *)
let rec subst e v r =
  let free_r = Expr.free_vars r in
  let rec go e =
    match e with
    | Expr.Extent _ | Expr.Lit _ -> e
    | Expr.Var x -> if x = v then r else e
    | Expr.Field (e1, f) -> Expr.Field (go e1, f)
    | Expr.Tuple fields -> Expr.Tuple (List.map (fun (l, e1) -> (l, go e1)) fields)
    | Expr.Map { v = b; body; src } ->
      let b, body = protect b body free_r in
      Expr.Map { v = b; body = (if b = v then body else go_under b body); src = go src }
    | Expr.Select { v = b; pred; src } ->
      let b, pred = protect b pred free_r in
      Expr.Select { v = b; pred = (if b = v then pred else go_under b pred); src = go src }
    | Expr.Join { v1; v2; pred; left; right; l1; l2 } ->
      let v1, pred = protect v1 pred free_r in
      let v2, pred = protect v2 pred free_r in
      let pred = if v1 = v || v2 = v then pred else go pred in
      Expr.Join { v1; v2; pred; left = go left; right = go right; l1; l2 }
    | Expr.Semijoin { v1; v2; pred; left; right } ->
      let v1, pred = protect v1 pred free_r in
      let v2, pred = protect v2 pred free_r in
      let pred = if v1 = v || v2 = v then pred else go pred in
      Expr.Semijoin { v1; v2; pred; left = go left; right = go right }
    | Expr.Aggr (a, e1) -> Expr.Aggr (a, go e1)
    | Expr.Binop (op, a, b) -> Expr.Binop (op, go a, go b)
    | Expr.Unop (op, e1) -> Expr.Unop (op, go e1)
    | Expr.Exists e1 -> Expr.Exists (go e1)
    | Expr.Member (a, b) -> Expr.Member (go a, go b)
    | Expr.Union (a, b) -> Expr.Union (go a, go b)
    | Expr.Diff (a, b) -> Expr.Diff (go a, go b)
    | Expr.Inter (a, b) -> Expr.Inter (go a, go b)
    | Expr.Flat e1 -> Expr.Flat (go e1)
    | Expr.Nest { src; key; inner } -> Expr.Nest { src = go src; key; inner }
    | Expr.Unnest { src; field } -> Expr.Unnest { src = go src; field }
    | Expr.ExtOp { op; args } -> Expr.ExtOp { op; args = List.map go args }
  and go_under b body = if b = v then body else go body
  (* Rename binder [b] away when it would capture a free variable of [r]. *)
  and protect b body free_r =
    if b <> v && List.mem b free_r then begin
      let fresh = gensym () in
      (fresh, subst body b (Expr.Var fresh))
    end
    else (b, body)
  in
  go e

let is_cheap_body body =
  let rec expensive = function
    | Expr.ExtOp _ | Expr.Aggr _ | Expr.Join _ | Expr.Semijoin _ | Expr.Nest _
    | Expr.Unnest _ -> true
    | Expr.Extent _ | Expr.Lit _ | Expr.Var _ -> false
    | Expr.Field (e, _) | Expr.Unop (_, e) | Expr.Exists e | Expr.Flat e -> expensive e
    | Expr.Tuple fields -> List.exists (fun (_, e) -> expensive e) fields
    | Expr.Map { body; src; _ } | Expr.Select { pred = body; src; _ } ->
      expensive body || expensive src
    | Expr.Binop (_, a, b)
    | Expr.Member (a, b)
    | Expr.Union (a, b)
    | Expr.Diff (a, b)
    | Expr.Inter (a, b) ->
      expensive a || expensive b
  in
  Expr.size body <= 12 && not (expensive body)

let fold_binop op a b =
  match Bat.apply_binop op a b with
  | atom -> Some atom
  | exception (Invalid_argument _ | Division_by_zero) -> None

let fold_unop op a =
  match Bat.apply_unop op a with
  | atom -> Some atom
  | exception Invalid_argument _ -> None

(* One bottom-up pass; records fired rule names. *)
let rec pass fired e =
  let e =
    match e with
    | Expr.Extent _ | Expr.Lit _ | Expr.Var _ -> e
    | Expr.Field (e1, f) -> Expr.Field (pass fired e1, f)
    | Expr.Tuple fields -> Expr.Tuple (List.map (fun (l, x) -> (l, pass fired x)) fields)
    | Expr.Map { v; body; src } ->
      Expr.Map { v; body = pass fired body; src = pass fired src }
    | Expr.Select { v; pred; src } ->
      Expr.Select { v; pred = pass fired pred; src = pass fired src }
    | Expr.Join { v1; v2; pred; left; right; l1; l2 } ->
      Expr.Join
        { v1; v2; pred = pass fired pred; left = pass fired left; right = pass fired right; l1; l2 }
    | Expr.Semijoin { v1; v2; pred; left; right } ->
      Expr.Semijoin
        { v1; v2; pred = pass fired pred; left = pass fired left; right = pass fired right }
    | Expr.Aggr (a, e1) -> Expr.Aggr (a, pass fired e1)
    | Expr.Binop (op, a, b) -> Expr.Binop (op, pass fired a, pass fired b)
    | Expr.Unop (op, e1) -> Expr.Unop (op, pass fired e1)
    | Expr.Exists e1 -> Expr.Exists (pass fired e1)
    | Expr.Member (a, b) -> Expr.Member (pass fired a, pass fired b)
    | Expr.Union (a, b) -> Expr.Union (pass fired a, pass fired b)
    | Expr.Diff (a, b) -> Expr.Diff (pass fired a, pass fired b)
    | Expr.Inter (a, b) -> Expr.Inter (pass fired a, pass fired b)
    | Expr.Flat e1 -> Expr.Flat (pass fired e1)
    | Expr.Nest { src; key; inner } -> Expr.Nest { src = pass fired src; key; inner }
    | Expr.Unnest { src; field } -> Expr.Unnest { src = pass fired src; field }
    | Expr.ExtOp { op; args } -> Expr.ExtOp { op; args = List.map (pass fired) args }
  in
  rules fired e

and rules fired e =
  let fire name e' =
    fired := name :: !fired;
    e'
  in
  match e with
  (* map[b2](map[b1](src)) => map[b2{v2:=b1}](src) *)
  | Expr.Map { v = v2; body = b2; src = Expr.Map { v = v1; body = b1; src } } ->
    fire "map-map-fusion" (Expr.Map { v = v1; body = subst b2 v2 b1; src })
  (* identity map *)
  | Expr.Map { v; body = Expr.Var v'; src } when v = v' -> fire "identity-map" src
  (* select[p2](select[p1](src)) => select[p1 and p2{v2:=v1}](src) *)
  | Expr.Select { v = v2; pred = p2; src = Expr.Select { v = v1; pred = p1; src } } ->
    fire "select-select-fusion"
      (Expr.Select { v = v1; pred = Expr.Binop (Bat.And, p1, subst p2 v2 (Expr.Var v1)); src })
  (* select[true](src) *)
  | Expr.Select { pred = Expr.Lit (Value.Atom (Atom.Bool true), _); src; _ } ->
    fire "select-true" src
  (* select[p](map[body](src)) => map[body](select[p{v2:=body}](src)) for cheap bodies *)
  | Expr.Select { v = v2; pred; src = Expr.Map { v = v1; body; src } }
    when is_cheap_body body ->
    fire "select-pushdown"
      (Expr.Map { v = v1; body; src = Expr.Select { v = v1; pred = subst pred v2 body; src } })
  (* tuple projection *)
  | Expr.Field (Expr.Tuple fields, f) when List.mem_assoc f fields ->
    fire "tuple-projection" (List.assoc f fields)
  (* constant folding *)
  | Expr.Binop (op, Expr.Lit (Value.Atom a, _), Expr.Lit (Value.Atom b, _)) -> (
    match fold_binop op a b with
    | Some atom ->
      fire "constant-folding" (Expr.Lit (Value.Atom atom, Types.Atomic (Atom.type_of atom)))
    | None -> e)
  | Expr.Unop (op, Expr.Lit (Value.Atom a, _)) -> (
    match fold_unop op a with
    | Some atom ->
      fire "constant-folding" (Expr.Lit (Value.Atom atom, Types.Atomic (Atom.type_of atom)))
    | None -> e)
  (* cardinality-only consumers ignore map *)
  | Expr.Exists (Expr.Map { src; _ }) -> fire "exists-ignores-map" (Expr.Exists src)
  | Expr.Aggr (Bat.Count, Expr.Map { src; _ }) ->
    fire "count-ignores-map" (Expr.Aggr (Bat.Count, src))
  | e -> e

let rewrite_trace expr =
  let fired = ref [] in
  let rec fix e n =
    if n = 0 then e
    else
      let e' = pass fired e in
      if e' = e then e else fix e' (n - 1)
  in
  let result = fix expr 20 in
  (result, List.rev !fired)

let rewrite expr = fst (rewrite_trace expr)
