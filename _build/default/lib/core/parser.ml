module Atom = Mirror_bat.Atom
module Bat = Mirror_bat.Bat
module Stringx = Mirror_util.Stringx

type stmt =
  | Define of string * Types.t
  | Let of string * Expr.t
  | Insert of string * Expr.t
  | Delete of string * (string * Expr.t)  (** extent, (binder, predicate) *)
  | Query of Expr.t

(* {1 Lexer} *)

type token =
  | TIdent of string
  | TInt of int
  | TFlt of float
  | TStr of string
  | TLparen
  | TRparen
  | TLbracket
  | TRbracket
  | TLbrace
  | TRbrace
  | TLt
  | TGt
  | TComma
  | TSemi
  | TColon
  | TDot
  | TEq
  | TNe
  | TLe
  | TGe
  | TPlus
  | TMinus
  | TStar
  | TSlash

exception Syntax of string

let fail fmt = Printf.ksprintf (fun s -> raise (Syntax s)) fmt

let lex src =
  let n = String.length src in
  let out = ref [] in
  let i = ref 0 in
  let push tok = out := tok :: !out in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '-' then begin
      (* line comment *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if Stringx.is_digit c then begin
      let j = ref !i in
      while !j < n && (Stringx.is_digit src.[!j] || src.[!j] = '.') do
        incr j
      done;
      let text = String.sub src !i (!j - !i) in
      (match (int_of_string_opt text, float_of_string_opt text) with
      | Some v, _ -> push (TInt v)
      | None, Some v -> push (TFlt v)
      | None, None -> fail "bad number %S" text);
      i := !j
    end
    else if Stringx.is_alpha c || c = '_' then begin
      let j = ref !i in
      while !j < n && (Stringx.is_alnum src.[!j] || src.[!j] = '_') do
        incr j
      done;
      push (TIdent (String.sub src !i (!j - !i)));
      i := !j
    end
    else if c = '\'' || c = '"' then begin
      let quote = c in
      let j = ref (!i + 1) in
      let buf = Buffer.create 16 in
      while !j < n && src.[!j] <> quote do
        Buffer.add_char buf src.[!j];
        incr j
      done;
      if !j >= n then fail "unterminated string literal";
      push (TStr (Buffer.contents buf));
      i := !j + 1
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "!=" | "<>" ->
        push TNe;
        i := !i + 2
      | "<=" ->
        push TLe;
        i := !i + 2
      | ">=" ->
        push TGe;
        i := !i + 2
      | _ ->
        (match c with
        | '(' -> push TLparen
        | ')' -> push TRparen
        | '[' -> push TLbracket
        | ']' -> push TRbracket
        | '{' -> push TLbrace
        | '}' -> push TRbrace
        | '<' -> push TLt
        | '>' -> push TGt
        | ',' -> push TComma
        | ';' -> push TSemi
        | ':' -> push TColon
        | '.' -> push TDot
        | '=' -> push TEq
        | '+' -> push TPlus
        | '-' -> push TMinus
        | '*' -> push TStar
        | '/' -> push TSlash
        | _ -> fail "unexpected character %C" c);
        incr i
    end
  done;
  List.rev !out

(* {1 Token stream} *)

type state = {
  mutable tokens : token list;
  mutable bindings : (string * Expr.t) list;
  mutable binders : string list;  (* THIS stack, innermost first *)
  mutable fresh : int;
}

let peek st = match st.tokens with [] -> None | tok :: _ -> Some tok

let advance st =
  match st.tokens with
  | [] -> fail "unexpected end of input"
  | tok :: rest ->
    st.tokens <- rest;
    tok

let expect st tok what =
  let got = advance st in
  if got <> tok then fail "expected %s" what

let expect_ident st what =
  match advance st with TIdent id -> id | _ -> fail "expected %s" what

let fresh_var st prefix =
  st.fresh <- st.fresh + 1;
  Printf.sprintf "%s%d" prefix st.fresh

(* {1 Types} *)

let media_base = function
  | "URL" | "Text" | "Image" | "str" | "string" -> Ok Atom.TStr
  | "int" | "integer" -> Ok Atom.TInt
  | "flt" | "float" -> Ok Atom.TFlt
  | "bool" -> Ok Atom.TBool
  | "oid" -> Ok Atom.TOid
  | other -> Error other

let rec parse_ty st =
  let id = expect_ident st "a structure name" in
  match String.uppercase_ascii id with
  | "SET" ->
    expect st TLt "'<'";
    let elem = parse_ty st in
    expect st TGt "'>'";
    Types.Set elem
  | "LIST" ->
    expect st TLt "'<'";
    let elem = parse_ty st in
    expect st TGt "'>'";
    Types.Xt ("LIST", [ elem ])
  | "TUPLE" ->
    expect st TLt "'<'";
    let rec fields acc =
      let fty = parse_ty st in
      expect st TColon "':'";
      let label = expect_ident st "a field label" in
      let acc = (label, fty) :: acc in
      match peek st with
      | Some TComma ->
        ignore (advance st);
        fields acc
      | _ -> List.rev acc
    in
    let fs = fields [] in
    expect st TGt "'>'";
    Types.Tuple fs
  | "CONTREP" -> (
    expect st TLt "'<'";
    (* either a media-domain name (paper syntax, CONTREP<Text>) or a
       full atomic type (round-trip syntax, CONTREP< Atomic<str> >) *)
    match st.tokens with
    | TIdent _ :: TGt :: _ ->
      let medium = expect_ident st "a media domain" in
      expect st TGt "'>'";
      (match media_base medium with
      | Ok base -> Types.Xt ("CONTREP", [ Types.Atomic base ])
      | Error other -> fail "unknown media domain %S" other)
    | _ ->
      let inner = parse_ty st in
      expect st TGt "'>'";
      (match inner with
      | Types.Atomic _ -> Types.Xt ("CONTREP", [ inner ])
      | _ -> fail "CONTREP takes an atomic media domain"))
  | "ATOMIC" ->
    expect st TLt "'<'";
    let medium = expect_ident st "a base type" in
    expect st TGt "'>'";
    (match media_base medium with
    | Ok base -> Types.Atomic base
    | Error other -> fail "unknown base type %S" other)
  | _ -> (
    (* any registered structure extension is legal DDL: ID< t1, t2 > *)
    match Extension.find id with
    | None -> fail "unknown structure %S" id
    | Some _ -> (
      match peek st with
      | Some TLt ->
        ignore (advance st);
        let rec params acc =
          let ty = parse_ty st in
          match advance st with
          | TComma -> params (ty :: acc)
          | TGt -> List.rev (ty :: acc)
          | _ -> fail "expected ',' or '>'"
        in
        Types.Xt (id, params [])
      | _ -> Types.Xt (id, [])))

(* {1 Expressions} *)

let aggr_of = function
  | "sum" -> Some Bat.Sum
  | "count" -> Some Bat.Count
  | "min" -> Some Bat.Min
  | "max" -> Some Bat.Max
  | "avg" -> Some Bat.Avg
  | "prod" -> Some Bat.Prod
  | _ -> None

let rec parse_or st =
  let lhs = parse_and st in
  match peek st with
  | Some (TIdent "or") ->
    ignore (advance st);
    Expr.Binop (Bat.Or, lhs, parse_or st)
  | _ -> lhs

and parse_and st =
  let lhs = parse_not st in
  match peek st with
  | Some (TIdent "and") ->
    ignore (advance st);
    Expr.Binop (Bat.And, lhs, parse_and st)
  | _ -> lhs

and parse_not st =
  match peek st with
  | Some (TIdent "not") ->
    ignore (advance st);
    Expr.Unop (Bat.Not, parse_not st)
  | _ -> parse_cmp st

and parse_cmp st =
  let lhs = parse_add st in
  let cmp c =
    ignore (advance st);
    Expr.Binop (Bat.CmpOp c, lhs, parse_add st)
  in
  match peek st with
  | Some TEq -> cmp Bat.Eq
  | Some TNe -> cmp Bat.Ne
  | Some TLt -> cmp Bat.Lt
  | Some TLe -> cmp Bat.Le
  | Some TGt -> cmp Bat.Gt
  | Some TGe -> cmp Bat.Ge
  | _ -> lhs

and parse_add st =
  let rec loop lhs =
    match peek st with
    | Some TPlus ->
      ignore (advance st);
      loop (Expr.Binop (Bat.Add, lhs, parse_mul st))
    | Some TMinus ->
      ignore (advance st);
      loop (Expr.Binop (Bat.Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    match peek st with
    | Some TStar ->
      ignore (advance st);
      loop (Expr.Binop (Bat.Mul, lhs, parse_postfix st))
    | Some TSlash ->
      ignore (advance st);
      loop (Expr.Binop (Bat.Div, lhs, parse_postfix st))
    | _ -> lhs
  in
  loop (parse_postfix st)

and parse_postfix st =
  let rec loop e =
    match peek st with
    | Some TDot ->
      ignore (advance st);
      loop (Expr.Field (e, expect_ident st "a field name"))
    | _ -> e
  in
  loop (parse_primary st)

and parse_args st =
  expect st TLparen "'('";
  match peek st with
  | Some TRparen ->
    ignore (advance st);
    []
  | _ ->
    let rec loop acc =
      let e = parse_or st in
      match advance st with
      | TComma -> loop (e :: acc)
      | TRparen -> List.rev (e :: acc)
      | _ -> fail "expected ',' or ')'"
    in
    loop []

and parse_primary st =
  match advance st with
  | TInt v -> Expr.lit_int v
  | TFlt v -> Expr.lit_flt v
  | TStr v -> Expr.lit_str v
  | TMinus -> (
    match parse_primary st with
    | Expr.Lit (Value.Atom (Atom.Int v), _) -> Expr.lit_int (-v)
    | Expr.Lit (Value.Atom (Atom.Flt v), _) -> Expr.lit_flt (-.v)
    | e -> Expr.Unop (Bat.Neg, e))
  | TLparen ->
    let e = parse_or st in
    expect st TRparen "')'";
    e
  | TLbrace -> (
    (* set literal of atoms *)
    let rec items acc =
      match advance st with
      | TRbrace -> List.rev acc
      | TInt v -> sep (Value.int v :: acc)
      | TFlt v -> sep (Value.flt v :: acc)
      | TStr v -> sep (Value.str v :: acc)
      | TIdent "true" -> sep (Value.bool true :: acc)
      | TIdent "false" -> sep (Value.bool false :: acc)
      | _ -> fail "set literals may contain only atoms"
    and sep acc =
      match advance st with
      | TComma -> items acc
      | TRbrace -> List.rev acc
      | _ -> fail "expected ',' or '}'"
    in
    match items [] with
    | [] -> fail "empty set literals need a type; use a typed binding instead"
    | first :: _ as atoms ->
      let base = Atom.type_of (Value.as_atom first) in
      if List.for_all (fun v -> Atom.type_of (Value.as_atom v) = base) atoms then
        Expr.Lit (Value.VSet atoms, Types.Set (Types.Atomic base))
      else fail "set literal atoms must share one type")
  | TIdent id -> parse_ident st id
  | _ -> fail "unexpected token"

and parse_ident st id =
  match id with
  | "true" -> Expr.lit_bool true
  | "false" -> Expr.lit_bool false
  | "THIS" -> (
    match st.binders with
    | v :: _ -> Expr.Var v
    | [] -> fail "THIS outside of map/select")
  | "THIS1" | "THIS2" -> Expr.Var id
  | "map" | "select" ->
    expect st TLbracket "'['";
    (* optional explicit binder: map[v: body](src) *)
    let v =
      match st.tokens with
      | TIdent v :: TColon :: rest ->
        st.tokens <- rest;
        v
      | _ -> fresh_var st "this"
    in
    let saved = st.binders in
    st.binders <- v :: st.binders;
    let body = parse_or st in
    st.binders <- saved;
    expect st TRbracket "']'";
    expect st TLparen "'('";
    let src = parse_or st in
    expect st TRparen "')'";
    if id = "map" then Expr.Map { v; body; src } else Expr.Select { v; pred = body; src }
  | "join" | "semijoin" -> (
    expect st TLbracket "'['";
    (* optional explicit binders: join[a, b: pred](x, y) *)
    let v1, v2 =
      match st.tokens with
      | TIdent a :: TComma :: TIdent b :: TColon :: rest ->
        st.tokens <- rest;
        (a, b)
      | _ -> ("THIS1", "THIS2")
    in
    let saved = st.binders in
    st.binders <- v1 :: v2 :: st.binders;
    let pred = parse_or st in
    st.binders <- saved;
    let l1, l2 =
      match peek st with
      | Some TSemi ->
        ignore (advance st);
        let l1 = expect_ident st "a label" in
        expect st TComma "','";
        let l2 = expect_ident st "a label" in
        (l1, l2)
      | _ -> ("left", "right")
    in
    expect st TRbracket "']'";
    match parse_args st with
    | [ left; right ] ->
      if id = "join" then Expr.Join { v1; v2; pred; left; right; l1; l2 }
      else Expr.Semijoin { v1; v2; pred; left; right }
    | _ -> fail "%s takes two collection arguments" id)
  | "unnest" ->
    expect st TLbracket "'['";
    let field = expect_ident st "a field name" in
    expect st TRbracket "']'";
    (match parse_args st with
    | [ src ] -> Expr.Unnest { src; field }
    | _ -> fail "unnest takes one argument")
  | "nest" ->
    expect st TLbracket "'['";
    let key = expect_ident st "a key field" in
    expect st TComma "','";
    let inner = expect_ident st "an inner label" in
    expect st TRbracket "']'";
    (match parse_args st with
    | [ src ] -> Expr.Nest { src; key; inner }
    | _ -> fail "nest takes one argument")
  | "tuple" ->
    expect st TLparen "'('";
    let rec fields acc =
      let label = expect_ident st "a field label" in
      expect st TColon "':'";
      let e = parse_or st in
      match advance st with
      | TComma -> fields ((label, e) :: acc)
      | TRparen -> List.rev ((label, e) :: acc)
      | _ -> fail "expected ',' or ')'"
    in
    Expr.Tuple (fields [])
  | "exists" -> one_arg st "exists" (fun e -> Expr.Exists e)
  | "distinct" -> one_arg st "distinct" (fun e -> Expr.Union (e, e))
  | "flatten" -> one_arg st "flatten" (fun e -> Expr.Flat e)
  | "in" -> two_args st "in" (fun a b -> Expr.Member (a, b))
  | "union" -> two_args st "union" (fun a b -> Expr.Union (a, b))
  | "pow" -> two_args st "pow" (fun a b -> Expr.Binop (Bat.Pow, a, b))
  | "min2" -> two_args st "min2" (fun a b -> Expr.Binop (Bat.MinOp, a, b))
  | "max2" -> two_args st "max2" (fun a b -> Expr.Binop (Bat.MaxOp, a, b))
  | "diff" -> two_args st "diff" (fun a b -> Expr.Diff (a, b))
  | "inter" -> two_args st "inter" (fun a b -> Expr.Inter (a, b))
  | "getBLnet" | "getblnet" -> (
    match parse_args st with
    | [ a; b ] -> Expr.ExtOp { op = "getBLnet"; args = [ a; b ] }
    | [ a; b; Expr.Extent _ ] | [ a; b; Expr.Var _ ] ->
      Expr.ExtOp { op = "getBLnet"; args = [ a; b ] }
    | _ -> fail "getBLnet takes (contrep, 'net'[, stats])")
  | "getBL" | "getbl" -> (
    match parse_args st with
    | [ a; b ] -> Expr.ExtOp { op = "getBL"; args = [ a; b ] }
    | [ a; b; Expr.Extent _ ] | [ a; b; Expr.Var _ ] ->
      (* The paper passes a third `stats` handle; statistics are
         resolved through the CONTREP's bound space. *)
      Expr.ExtOp { op = "getBL"; args = [ a; b ] }
    | _ -> fail "getBL takes (contrep, query[, stats])")
  | _ when aggr_of id <> None -> (
    match parse_args st with
    | [ e ] -> Expr.Aggr (Option.get (aggr_of id), e)
    | _ -> fail "%s takes one argument" id)
  | "terms" | "toset" | "clen" -> (
    match parse_args st with
    | [ e ] -> Expr.ExtOp { op = id; args = [ e ] }
    | _ -> fail "%s takes one argument" id)
  | "tolist" | "tolist_desc" | "take" | "tf" -> (
    match parse_args st with
    | [ a; b ] -> Expr.ExtOp { op = id; args = [ a; b ] }
    | _ -> fail "%s takes two arguments" id)
  | _ when List.mem id st.binders ->
    (* an explicitly-named binder in scope *)
    Expr.Var id
  | _ -> (
    (* caller bindings first, then registered extension operators, then
       extents *)
    match List.assoc_opt id st.bindings with
    | Some e -> e
    | None -> (
      match peek st with
      | Some TLparen -> (
        match Extension.find_op id with
        | Some _ -> Expr.ExtOp { op = id; args = parse_args st }
        | None -> fail "unknown function %S" id)
      | _ -> Expr.Extent id))

and one_arg st name f =
  match parse_args st with
  | [ e ] -> f e
  | _ -> fail "%s takes one argument" name

and two_args st name f =
  match parse_args st with
  | [ a; b ] -> f a b
  | _ -> fail "%s takes two arguments" name

(* {1 Statements} *)

let parse_stmt st =
  match st.tokens with
  | TIdent "let" :: TIdent _ :: TEq :: _ ->
    ignore (advance st);
    let name = expect_ident st "a binding name" in
    ignore (advance st);
    let e = parse_or st in
    expect st TSemi "';'";
    (* later statements see the binding by substitution *)
    st.bindings <- (name, e) :: st.bindings;
    Let (name, e)
  | TIdent "insert" :: TIdent "into" :: _ ->
    ignore (advance st);
    ignore (advance st);
    let name = expect_ident st "an extent name" in
    let e = parse_or st in
    expect st TSemi "';'";
    Insert (name, e)
  | TIdent "delete" :: TIdent "from" :: _ ->
    ignore (advance st);
    ignore (advance st);
    let name = expect_ident st "an extent name" in
    (match advance st with
    | TIdent "where" -> ()
    | _ -> fail "expected 'where'");
    let v = fresh_var st "this" in
    let saved = st.binders in
    st.binders <- v :: st.binders;
    let pred = parse_or st in
    st.binders <- saved;
    expect st TSemi "';'";
    Delete (name, (v, pred))
  | _ ->
  match peek st with
  | Some (TIdent "define") ->
    ignore (advance st);
    let name = expect_ident st "an extent name" in
    (match advance st with
    | TIdent "as" -> ()
    | _ -> fail "expected 'as'");
    let ty = parse_ty st in
    expect st TSemi "';'";
    Define (name, ty)
  | _ ->
    let e = parse_or st in
    (match peek st with
    | Some TSemi -> ignore (advance st)
    | None -> ()
    | Some _ -> fail "expected ';'");
    Query e

let run_parser ?(bindings = []) src k =
  Bootstrap.ensure ();
  match lex src with
  | exception Syntax msg -> Error msg
  | tokens -> (
    let st = { tokens; bindings; binders = []; fresh = 0 } in
    match k st with
    | result ->
      if st.tokens <> [] then Error "trailing input after expression" else Ok result
    | exception Syntax msg -> Error msg)

let parse_program ?bindings src =
  run_parser ?bindings src (fun st ->
      let rec loop acc =
        match peek st with
        | None -> List.rev acc
        | Some _ -> loop (parse_stmt st :: acc)
      in
      loop [])

let parse_expr ?bindings src =
  run_parser ?bindings src (fun st ->
      let e = parse_or st in
      (* tolerate one trailing statement terminator *)
      (match peek st with Some TSemi -> ignore (advance st) | _ -> ());
      e)

let parse_type src = run_parser src (fun st -> parse_ty st)
