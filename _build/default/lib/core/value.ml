module Atom = Mirror_bat.Atom

type t =
  | Atom of Atom.t
  | Tup of (string * t) list
  | VSet of t list
  | Xv of { ext : string; meta : string list; items : t list }

let rank = function Atom _ -> 0 | Tup _ -> 1 | VSet _ -> 2 | Xv _ -> 3

let rec compare_lists : 'a. ('a -> 'a -> int) -> 'a list -> 'a list -> int =
  fun cmp xs ys ->
   match (xs, ys) with
   | [], [] -> 0
   | [], _ :: _ -> -1
   | _ :: _, [] -> 1
   | x :: xs, y :: ys ->
     let c = cmp x y in
     if c <> 0 then c else compare_lists cmp xs ys

let rec compare a b =
  match (a, b) with
  | Atom x, Atom y -> Atom.compare x y
  | Tup xs, Tup ys ->
    compare_lists
      (fun (lx, vx) (ly, vy) ->
        let c = String.compare lx ly in
        if c <> 0 then c else compare vx vy)
      xs ys
  | VSet xs, VSet ys ->
    (* multiset semantics: compare sorted *)
    compare_lists compare (List.sort compare xs) (List.sort compare ys)
  | Xv x, Xv y ->
    let c = String.compare x.ext y.ext in
    if c <> 0 then c
    else
      let c = compare_lists String.compare x.meta y.meta in
      if c <> 0 then c
      else if x.ext = "CONTREP" then
        (* bag semantics for content representations *)
        compare_lists compare (List.sort compare x.items) (List.sort compare y.items)
      else compare_lists compare x.items y.items
  | _, _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let rec pp ppf = function
  | Atom a -> Atom.pp ppf a
  | Tup fields ->
    Format.fprintf ppf "@[<hov 1><%a>@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         (fun ppf (label, v) -> Format.fprintf ppf "%s: %a" label pp v))
      fields
  | VSet items ->
    Format.fprintf ppf "@[<hov 1>{%a}@]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
      items
  | Xv { ext; meta; items } ->
    Format.fprintf ppf "@[<hov 1>%s%s[%a]@]" ext
      (if meta = [] then "" else "(" ^ String.concat "," meta ^ ")")
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
      items

let to_string v =
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Format.pp_set_margin ppf 1000000;
  Format.pp_set_max_indent ppf 999999;
  Format.fprintf ppf "@[<h>%a@]@?" pp v;
  Buffer.contents buf

let int i = Atom (Atom.Int i)
let flt f = Atom (Atom.Flt f)
let str s = Atom (Atom.Str s)
let bool b = Atom (Atom.Bool b)

let contrep ?space bag =
  (* merge duplicate terms *)
  let tbl = Hashtbl.create (List.length bag) in
  let order = ref [] in
  List.iter
    (fun (term, tf) ->
      match Hashtbl.find_opt tbl term with
      | Some prev -> Hashtbl.replace tbl term (prev +. tf)
      | None ->
        Hashtbl.add tbl term tf;
        order := term :: !order)
    bag;
  let items =
    List.rev_map
      (fun term ->
        Tup [ ("term", str term); ("tf", flt (Hashtbl.find tbl term)) ])
      !order
  in
  Xv { ext = "CONTREP"; meta = (match space with None -> [] | Some s -> [ s ]); items }

let contrep_bag = function
  | Xv { ext = "CONTREP"; items; _ } ->
    List.map
      (fun item ->
        match item with
        | Tup [ ("term", Atom (Atom.Str term)); ("tf", Atom tf) ] -> (term, Atom.as_float tf)
        | _ -> invalid_arg "Value.contrep_bag: malformed CONTREP item")
      items
  | _ -> invalid_arg "Value.contrep_bag: not a CONTREP value"

let contrep_space = function
  | Xv { ext = "CONTREP"; meta = space :: _; _ } -> Some space
  | Xv { ext = "CONTREP"; meta = []; _ } -> None
  | _ -> invalid_arg "Value.contrep_space: not a CONTREP value"

let vlist items = Xv { ext = "LIST"; meta = []; items }

let as_atom = function Atom a -> a | v -> invalid_arg ("Value.as_atom: " ^ to_string v)
let as_set = function VSet xs -> xs | v -> invalid_arg ("Value.as_set: " ^ to_string v)
let as_tuple = function Tup fs -> fs | v -> invalid_arg ("Value.as_tuple: " ^ to_string v)

let field_exn v label =
  match v with
  | Tup fields -> (
    match List.assoc_opt label fields with
    | Some x -> x
    | None -> invalid_arg (Printf.sprintf "Value.field_exn: no field %S" label))
  | _ -> invalid_arg "Value.field_exn: not a tuple"

let rec type_ok ty v =
  match (ty, v) with
  | Types.Atomic at, Atom a -> Atom.type_of a = at
  | Types.Tuple fts, Tup fvs ->
    List.length fts = List.length fvs
    && List.for_all2
         (fun (lt, t) (lv, x) -> String.equal lt lv && type_ok t x)
         fts fvs
  | Types.Set elem, VSet items -> List.for_all (type_ok elem) items
  | Types.Xt (name, _), Xv { ext; _ } -> String.equal name ext
  | (Types.Atomic _ | Types.Tuple _ | Types.Set _ | Types.Xt _), _ -> false
