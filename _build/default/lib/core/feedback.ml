let mean_bag bags =
  match bags with
  | [] -> []
  | _ ->
    let n = Float.of_int (List.length bags) in
    let acc = Hashtbl.create 32 in
    List.iter
      (fun bag ->
        List.iter
          (fun (term, tf) ->
            let prev = Option.value ~default:0.0 (Hashtbl.find_opt acc term) in
            Hashtbl.replace acc term (prev +. tf))
          bag)
      bags;
    Hashtbl.fold (fun term total out -> (term, total /. n) :: out) acc []

let rocchio ?(alpha = 1.0) ?(beta = 0.75) ?(gamma = 0.25) ?(max_terms = 10) ~original
    ~relevant ~irrelevant () =
  let weights = Hashtbl.create 32 in
  let add scale bag =
    List.iter
      (fun (term, tf) ->
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt weights term) in
        Hashtbl.replace weights term (prev +. (scale *. tf)))
      bag
  in
  add alpha original;
  add beta (mean_bag relevant);
  add (-.gamma) (mean_bag irrelevant);
  Hashtbl.fold (fun term w out -> if w > 0.0 then (term, w) :: out else out) weights []
  |> List.sort (fun (t1, a) (t2, b) ->
         let c = Float.compare b a in
         if c <> 0 then c else String.compare t1 t2)
  |> List.filteri (fun i _ -> i < max_terms)

let precision_at k ~ranked ~relevant =
  if k <= 0 then 0.0
  else begin
    let top = List.filteri (fun i _ -> i < k) ranked in
    match top with
    | [] -> 0.0
    | _ ->
      Float.of_int (List.length (List.filter relevant top)) /. Float.of_int (List.length top)
  end

let average_precision ~ranked ~relevant =
  let hits = ref 0 and sum = ref 0.0 in
  List.iteri
    (fun i doc ->
      if relevant doc then begin
        incr hits;
        sum := !sum +. (Float.of_int !hits /. Float.of_int (i + 1))
      end)
    ranked;
  if !hits = 0 then 0.0 else !sum /. Float.of_int !hits
