(** Algebraic query optimisation on Moa expressions.

    "The translation from the logical data model into a different
    physical model provides an excellent basis for algebraic query
    optimization" — these are the logical rewrites; common
    subexpression elimination happens below, in the {!Mil} executor's
    memo table.

    Rules (applied bottom-up to a fixpoint):
    - map/map fusion, select/select fusion
    - select pushdown through cheap map bodies
    - identity-map and constant-true-select elimination
    - projection of constructed tuples
    - constant folding of atomic operators
    - cardinality-only shortcuts ([exists]/[count] ignore [map]) *)

val rewrite : Expr.t -> Expr.t
(** Optimised equivalent expression. *)

val rewrite_trace : Expr.t -> Expr.t * string list
(** Also report the names of the rules that fired, in order. *)

val subst : Expr.t -> string -> Expr.t -> Expr.t
(** [subst e v r] — capture-avoiding substitution of [r] for free
    occurrences of [v] in [e] (exposed for tests). *)
