(** Logical values of the Moa data model.

    Values exist for three purposes: literals inside queries, the
    object-at-a-time reference semantics ({!Naive}), and the reified
    results handed back to callers.  The flattened execution path never
    builds them — it works on BATs. *)

type t =
  | Atom of Mirror_bat.Atom.t
  | Tup of (string * t) list
  | VSet of t list
  | Xv of { ext : string; meta : string list; items : t list }
      (** Extension value; the payload encoding is owned by the
          extension ([LIST]: elements in order; [CONTREP]: one
          [Tup [term; tf]] per distinct term, [meta = [space]] once
          bound to a collection). *)

val compare : t -> t -> int
(** Total order.  Sets are compared as sorted multisets, so two sets
    with the same elements in different order are equal. *)

val equal : t -> t -> bool
(** [compare a b = 0]. *)

val pp : Format.formatter -> t -> unit
(** Debug/CLI rendering. *)

val to_string : t -> string
(** [Format.asprintf "%a" pp]. *)

(** {1 Constructors and accessors} *)

val int : int -> t
val flt : float -> t
val str : string -> t
val bool : bool -> t

val contrep : ?space:string -> (string * float) list -> t
(** A CONTREP value from a term bag; duplicate terms are tf-summed. *)

val contrep_bag : t -> (string * float) list
(** The term bag of a CONTREP value.
    @raise Invalid_argument on other values. *)

val contrep_space : t -> string option
(** The bound statistics space, when any. *)

val vlist : t list -> t
(** A LIST value. *)

val as_atom : t -> Mirror_bat.Atom.t
(** @raise Invalid_argument when not an atom. *)

val as_set : t -> t list
(** @raise Invalid_argument when not a set. *)

val as_tuple : t -> (string * t) list
(** @raise Invalid_argument when not a tuple. *)

val field_exn : t -> string -> t
(** Tuple field. @raise Invalid_argument when absent. *)

val type_ok : Types.t -> t -> bool
(** Does the value inhabit the type?  Extension values are checked
    shallowly (name match only) — deep checks belong to the
    extension. *)
