let ensure () =
  Ext_list.register ();
  Ext_contrep.register ()
