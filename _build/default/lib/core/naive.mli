(** The object-at-a-time reference evaluator.

    Direct recursive interpretation of Moa expressions over logical
    values: the semantics the flattened set-at-a-time execution must
    agree with (tested by QCheck equivalence properties), and the
    baseline that the [BWK98] flattening claim — experiment E1 — is
    measured against. *)

val aggr_empty_default : Mirror_bat.Bat.aggr -> Mirror_bat.Atom.ty -> Mirror_bat.Atom.t
(** The total-semantics value of an aggregate over an empty set of the
    given element base type ([Sum]/[Count] 0, [Prod] 1, [Min]/[Max]/
    [Avg] the base type's zero).  Shared with the flattening compiler
    so the two evaluators agree. *)

val eval : Storage.t -> Expr.t -> Value.t
(** Evaluate a closed expression against the loaded extents.
    @raise Failure on unbound names or dynamic type errors (expressions
    accepted by {!Typecheck.infer} do not raise). *)

val eval_with : Storage.t -> vars:(string * Value.t) list -> Expr.t -> Value.t
(** Evaluate with free variables pre-bound (their types are recovered
    from the values; intended for tests). *)
