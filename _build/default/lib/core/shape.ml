type 'b t =
  | Atomic of 'b
  | Tuple of (string * 'b t) list
  | Set of { link : 'b; elem : 'b t }
  | Xstruct of {
      ext : string;
      meta : string list;
      bats : 'b list;
      subs : 'b t list;
    }

let rec map f = function
  | Atomic b -> Atomic (f b)
  | Tuple fields -> Tuple (List.map (fun (l, s) -> (l, map f s)) fields)
  | Set { link; elem } -> Set { link = f link; elem = map f elem }
  | Xstruct { ext; meta; bats; subs } ->
    Xstruct { ext; meta; bats = List.map f bats; subs = List.map (map f) subs }

let rec iter f = function
  | Atomic b -> f b
  | Tuple fields -> List.iter (fun (_, s) -> iter f s) fields
  | Set { link; elem } ->
    f link;
    iter f elem
  | Xstruct { bats; subs; _ } ->
    List.iter f bats;
    List.iter (iter f) subs

let count_bats shape =
  let n = ref 0 in
  iter (fun _ -> incr n) shape;
  !n
