(** The flattened-representation shape, after [BWK98].

    A Moa structure flattens to a bundle of BATs mirroring the type
    tree: atomic nodes carry one BAT (context oid -> value), tuples
    share their context over their fields, sets add a link BAT (element
    oid -> parent oid), and extension structures carry an
    extension-defined list of BATs plus optional sub-bundles.

    The shape is polymorphic in the BAT representation: [Mil.t Shape.t]
    is a compiled plan bundle, [Bat.t Shape.t] a materialised one. *)

type 'b t =
  | Atomic of 'b  (** ctx -> atom *)
  | Tuple of (string * 'b t) list
  | Set of { link : 'b; elem : 'b t }  (** link: elem -> parent ctx *)
  | Xstruct of {
      ext : string;  (** Owning extension. *)
      meta : string list;  (** Extension payload (e.g. stats space). *)
      bats : 'b list;  (** Extension-defined BATs, positional. *)
      subs : 'b t list;  (** Extension-defined sub-bundles. *)
    }

val map : ('b -> 'c) -> 'b t -> 'c t
(** Rewrite every BAT slot. *)

val iter : ('b -> unit) -> 'b t -> unit
(** Visit every BAT slot. *)

val count_bats : 'b t -> int
(** Number of BAT slots in the bundle. *)
