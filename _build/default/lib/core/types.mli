(** The Moa structural type system.

    "Structures, such as tuple and (multi-)set, define complex data
    types out of the simple base types.  The base types, such as
    integer and string, are inherited from the underlying physical
    database."  The kernel structures are [Atomic], [TUPLE] and [SET];
    every other structure (LIST, CONTREP, …) enters through the
    extension registry as an [Xt] node — the "open complex object
    system". *)

type t =
  | Atomic of Mirror_bat.Atom.ty
      (** Base types inherited from the physical model. *)
  | Tuple of (string * t) list  (** Labelled record; labels unique. *)
  | Set of t  (** Multi-set structure. *)
  | Xt of string * t list
      (** Extension structure instance: name and type parameters,
          e.g. [Xt ("LIST", [elem])] or [Xt ("CONTREP", [Atomic TStr])]. *)

val equal : t -> t -> bool
(** Structural equality. *)

val pp : Format.formatter -> t -> unit
(** Paper-style rendering: [SET< TUPLE< Atomic<str>: name > >]. *)

val to_string : t -> string
(** [Format.asprintf "%a" pp]. *)

val field : t -> string -> t option
(** Field type of a tuple type ([None] for other types or missing
    labels). *)

val well_labelled : t -> bool
(** Tuples everywhere have non-empty, pairwise-distinct labels. *)

val atom_default : Mirror_bat.Atom.ty -> Mirror_bat.Atom.t
(** The zero value of a base type — used as the aggregate default for
    empty groups. *)
