(** Parser for the Moa concrete syntax used in the paper.

    Schema definitions follow §3/§5.2 exactly:
    {v
    define TraditionalImgLib as
      SET< TUPLE< Atomic<URL>: source, CONTREP<Text>: annotation > >;
    v}

    Queries follow the [map]/[select] bracket syntax with [THIS] bound
    to the innermost iteration variable:
    {v
    map[sum(THIS)](
      map[getBL(THIS.annotation, query, stats)]( TraditionalImgLib ));
    v}

    Notes:
    - Media domains map onto physical base types: [URL], [Text] and
      [Image] are stored as strings; [int]/[flt]/[str]/[bool]/[oid] are
      accepted directly.
    - [getBL] accepts the paper's third [stats] argument as a bare
      identifier and resolves it implicitly (statistics live with the
      CONTREP's space); any other third argument is an error.
    - [join\[pred\](a, b)] binds [THIS1]/[THIS2] in the predicate and
      yields [TUPLE<left:_, right:_>]; labels can be overridden with
      [join\[pred; lab1, lab2\](a, b)].
    - Identifiers bound by the caller (e.g. [query]) can be supplied
      through [bindings]. *)

type stmt =
  | Define of string * Types.t  (** [define N as T;] *)
  | Let of string * Expr.t
      (** [let q = {'cat','dog'};] — later statements in the same
          program see [q] by substitution (view semantics). *)
  | Insert of string * Expr.t
      (** [insert into N EXPR;] — the (closed) expression evaluates to
          one new row. *)
  | Delete of string * (string * Expr.t)
      (** [delete from N where PRED;] — [THIS] in the predicate binds
          each row. *)
  | Query of Expr.t  (** A bare expression statement. *)

val parse_program : ?bindings:(string * Expr.t) list -> string -> (stmt list, string) result
(** Parse a sequence of statements separated/terminated by [;]. *)

val parse_expr : ?bindings:(string * Expr.t) list -> string -> (Expr.t, string) result
(** Parse a single expression.  Free identifiers are looked up in
    [bindings] first and otherwise treated as extent names. *)

val parse_type : string -> (Types.t, string) result
(** Parse a structure type. *)
