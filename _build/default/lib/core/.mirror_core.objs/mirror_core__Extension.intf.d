lib/core/extension.mli: Expr Mirror_bat Mirror_ir Shape Types Value
