lib/core/shape.ml: List
