lib/core/types.ml: Buffer Format List Mirror_bat String
