lib/core/types.mli: Format Mirror_bat
