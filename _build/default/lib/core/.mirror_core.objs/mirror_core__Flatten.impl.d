lib/core/flatten.ml: Expr Extension List Mirror_bat Naive Printf Shape Storage Typecheck Types Value
