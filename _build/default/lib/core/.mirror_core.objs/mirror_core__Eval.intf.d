lib/core/eval.mli: Expr Extension Mirror_bat Storage Types Value
