lib/core/bootstrap.mli:
