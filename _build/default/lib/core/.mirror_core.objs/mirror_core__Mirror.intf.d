lib/core/mirror.mli: Expr Mirror_daemon Mirror_mm Storage Types Value
