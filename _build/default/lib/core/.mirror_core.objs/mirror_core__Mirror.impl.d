lib/core/mirror.ml: Array Bootstrap Eval Expr Feedback Float Hashtbl List Mirror_bat Mirror_daemon Mirror_ir Mirror_mm Mirror_thesaurus Naive Option Parser Printf Result Storage String Types Value
