lib/core/feedback.mli:
