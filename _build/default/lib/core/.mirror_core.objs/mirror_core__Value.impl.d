lib/core/value.ml: Buffer Format Hashtbl Int List Mirror_bat Printf String Types
