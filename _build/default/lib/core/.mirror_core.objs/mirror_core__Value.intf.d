lib/core/value.mli: Format Mirror_bat Types
