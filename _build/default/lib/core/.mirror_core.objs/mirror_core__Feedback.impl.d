lib/core/feedback.ml: Float Hashtbl List Option String
