lib/core/persist.ml: Array Bootstrap Eval Extension Filename Fun List Mirror_bat Parser Printf Result Storage Sys Types Value
