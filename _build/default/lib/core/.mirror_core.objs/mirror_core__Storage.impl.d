lib/core/storage.ml: Extension Hashtbl List Mirror_bat Mirror_ir Mirror_util Option Printf Result Shape String Typecheck Types Value
