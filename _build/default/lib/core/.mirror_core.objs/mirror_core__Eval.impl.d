lib/core/eval.ml: Array Buffer Extension Flatten Hashtbl List Mirror_bat Optimize Option Printf Result Shape Storage Typecheck Types Value
