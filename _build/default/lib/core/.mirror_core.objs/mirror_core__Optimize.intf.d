lib/core/optimize.mli: Expr
