lib/core/expr.mli: Format Mirror_bat Types Value
