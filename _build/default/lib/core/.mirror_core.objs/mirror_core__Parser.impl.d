lib/core/parser.ml: Bootstrap Buffer Expr Extension List Mirror_bat Mirror_util Option Printf String Types Value
