lib/core/parser.mli: Expr Types
