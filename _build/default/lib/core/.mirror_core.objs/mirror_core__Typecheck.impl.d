lib/core/typecheck.ml: Expr Extension List Mirror_bat Printf Result String Types Value
