lib/core/expr.ml: Buffer Format Hashtbl List Mirror_bat Types Value
