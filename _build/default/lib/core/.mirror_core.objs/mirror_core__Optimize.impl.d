lib/core/optimize.ml: Expr List Mirror_bat Printf Types Value
