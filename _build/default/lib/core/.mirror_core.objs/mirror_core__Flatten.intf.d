lib/core/flatten.mli: Expr Extension Mirror_bat Storage
