lib/core/naive.ml: Expr Extension Hashtbl List Mirror_bat Option Printf Storage Typecheck Types Value
