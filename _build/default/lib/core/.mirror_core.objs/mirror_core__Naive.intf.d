lib/core/naive.mli: Expr Mirror_bat Storage Value
