lib/core/ext_list.ml: Expr Extension Flatten Hashtbl Int List Mirror_bat Option Printf Shape Types Value
