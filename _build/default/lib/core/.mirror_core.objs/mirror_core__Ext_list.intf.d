lib/core/ext_list.mli:
