lib/core/ext_contrep.mli:
