lib/core/storage.mli: Extension Mirror_bat Mirror_ir Typecheck Types Value
