lib/core/extension.ml: Expr Hashtbl List Mirror_bat Mirror_ir Printf Shape String Types Value
