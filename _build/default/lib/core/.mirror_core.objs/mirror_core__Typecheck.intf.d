lib/core/typecheck.mli: Expr Types
