lib/core/shape.mli:
