lib/core/bootstrap.ml: Ext_contrep Ext_list
