lib/core/ext_contrep.ml: Expr Extension Flatten Hashtbl List Mirror_bat Mirror_ir Option Printf Shape Types Value
