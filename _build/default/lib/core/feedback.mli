(** Relevance feedback (§5.2): "The user may provide relevance feedback
    for these images; this relevance feedback is used to improve the
    current query."

    Query reformulation is Rocchio-style over term bags: the new query
    moves towards the term distribution of judged-relevant documents
    and away from judged-irrelevant ones. *)

val rocchio :
  ?alpha:float ->
  ?beta:float ->
  ?gamma:float ->
  ?max_terms:int ->
  original:(string * float) list ->
  relevant:(string * float) list list ->
  irrelevant:(string * float) list list ->
  unit ->
  (string * float) list
(** [alpha] (1.0) weighs the original query, [beta] (0.75) the mean
    relevant bag, [gamma] (0.25) the mean irrelevant bag.  Terms whose
    reformulated weight is non-positive are dropped; the [max_terms]
    (10) heaviest survive, sorted by descending weight (ties by
    term). *)

val precision_at : int -> ranked:string list -> relevant:(string -> bool) -> float
(** Fraction of the first [k] ranked items that are relevant (0 when
    [k = 0] or the ranking is empty). *)

val average_precision : ranked:string list -> relevant:(string -> bool) -> float
(** Mean of precision@rank over the ranks of relevant items; 0 when
    nothing relevant is ranked. *)
