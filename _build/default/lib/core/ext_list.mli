(** The LIST structure extension.

    "Henk Ernst Blok … added the LIST structure to Moa" — LIST is the
    paper's example of *generic* structural extensibility.  A LIST is a
    SET with a per-context total order; its flattened representation
    adds one position BAT.

    Operators:
    - [tolist(set, field)] / [tolist_desc(set, field)] — order a set of
      tuples by an atomic field (pass [""] as the field to order a set
      of atomics by the elements themselves).  The field argument must
      be a string literal.
    - [take(list, n)] — list of the first [n] positions ([n] an integer
      literal).
    - [toset(list)] — forget the order.

    Together they express the top-k result lists of the demo
    application ([take(tolist_desc(scores, "score"), 10)]). *)

val register : unit -> unit
(** Idempotently register the extension. *)
