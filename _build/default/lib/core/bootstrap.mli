(** Registration of the built-in structure extensions.

    Call {!ensure} once before using the algebra; every entry point in
    this library ({!Mirror.create}, the parser-facing helpers, the CLI,
    tests and benchmarks) calls it, so user code normally never needs
    to. *)

val ensure : unit -> unit
(** Idempotently register LIST and CONTREP. *)
