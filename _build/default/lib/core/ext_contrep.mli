(** The CONTREP structure extension — content representations.

    "The CONTREP Moa structure supports the ranking scheme known as the
    inference network retrieval model."  A CONTREP value is a term bag
    over some media domain; materialising one binds it to a statistics
    space (document frequencies, lengths, collection size) kept by the
    IR engine.  Its flattened representation is the occurrence
    decomposition [(occ->ctx, occ->term, occ->tf)] plus a per-context
    length BAT.

    Operators:
    - [getBL(contrep, query)] — the paper's belief operator: a
      [SET<Atomic<flt>>] of one default-belief score per query term,
      computed by the *physical* probabilistic operator
      ["contrep_getbl"] this extension registers with the kernel.  For
      compatibility with the paper's surface syntax a third [stats]
      argument is accepted by the parser and resolved implicitly to the
      space the CONTREP is bound to.
    - [getBLnet(contrep, '#wsum( zebra^2 #and(stripe grass) )')] — a
      full inference-network operator tree (the InQuery #sum/#wsum/
      #and/#or/#not/#max combinators, see {!Mirror_ir.Querynet})
      evaluated per context by the physical operator
      ["contrep_getblnet"]; the net must be a string literal.
    - [terms(contrep)] — the term set of the representation.
    - [tf(contrep, 'term')] — the term frequency of a literal term.
    - [clen(contrep)] — the representation's length (sum of tfs).

    [tf]/[clen] exist so the belief formula can also be *composed* from
    generic operators — the baseline experiment E2 measures against the
    dedicated physical operator. *)

val register : unit -> unit
(** Idempotently register the extension (and its physical operator). *)
