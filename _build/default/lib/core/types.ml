module Atom = Mirror_bat.Atom

type t =
  | Atomic of Atom.ty
  | Tuple of (string * t) list
  | Set of t
  | Xt of string * t list

let rec equal a b =
  match (a, b) with
  | Atomic x, Atomic y -> x = y
  | Tuple xs, Tuple ys ->
    List.length xs = List.length ys
    && List.for_all2 (fun (lx, tx) (ly, ty) -> String.equal lx ly && equal tx ty) xs ys
  | Set x, Set y -> equal x y
  | Xt (nx, xs), Xt (ny, ys) ->
    String.equal nx ny && List.length xs = List.length ys && List.for_all2 equal xs ys
  | (Atomic _ | Tuple _ | Set _ | Xt _), _ -> false

let rec pp ppf = function
  | Atomic ty -> Format.fprintf ppf "Atomic<%s>" (Atom.ty_name ty)
  | Tuple fields ->
    Format.fprintf ppf "TUPLE< %a >"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         (fun ppf (label, ty) -> Format.fprintf ppf "%a: %s" pp ty label))
      fields
  | Set elem -> Format.fprintf ppf "SET< %a >" pp elem
  | Xt (name, []) -> Format.pp_print_string ppf name
  | Xt (name, args) ->
    Format.fprintf ppf "%s< %a >" name
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
      args

let to_string ty =
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Format.pp_set_margin ppf 1000000;
  Format.pp_set_max_indent ppf 999999;
  Format.fprintf ppf "@[<h>%a@]@?" pp ty;
  Buffer.contents buf

let field ty label =
  match ty with
  | Tuple fields -> List.assoc_opt label fields
  | Atomic _ | Set _ | Xt _ -> None

let rec well_labelled = function
  | Atomic _ -> true
  | Set elem -> well_labelled elem
  | Xt (_, args) -> List.for_all well_labelled args
  | Tuple fields ->
    let labels = List.map fst fields in
    List.for_all (fun l -> l <> "") labels
    && List.length (List.sort_uniq String.compare labels) = List.length labels
    && List.for_all (fun (_, ty) -> well_labelled ty) fields

let atom_default = function
  | Atom.TInt -> Atom.Int 0
  | Atom.TFlt -> Atom.Flt 0.0
  | Atom.TStr -> Atom.Str ""
  | Atom.TBool -> Atom.Bool false
  | Atom.TOid -> Atom.Oid 0
