(** Database persistence.

    A Mirror database saves as a directory of two human-readable files:

    - [schema.moa] — one [define N as T;] statement per extent, in the
      paper's DDL syntax (re-parsed on load, so the schema file is also
      valid CLI input);
    - [catalog.bats] — the full BAT catalog snapshot
      ({!Mirror_bat.Catalog.dump}).

    Loading rebuilds everything else: plan shapes follow the
    deterministic materialisation naming, extension side state
    (CONTREP statistics spaces, inverted indexes) is reconstructed by
    the extensions' [restore] hooks, and the logical rows for the naive
    evaluator are reified from the BATs.  Queries against the loaded
    database are bit-for-bit equivalent to the original. *)

val save : Storage.t -> dir:string -> (unit, string) result
(** Write [schema.moa] and [catalog.bats] into [dir] (created if
    missing). *)

val load : dir:string -> (Storage.t, string) result
(** Rebuild a storage manager from a saved directory. *)
