(** Structural type inference for Moa expressions.

    Checks an expression against the schema (extent types) and the
    extension registry, and returns its structure type.  Everything the
    flattening compiler assumes is validated here, so compilation can
    be written against well-typed inputs. *)

type env = { extent : string -> Types.t option }
(** Schema access. *)

val infer : env -> Expr.t -> (Types.t, string) result
(** Type of a closed expression. *)

val infer_with : env -> vars:(string * Types.t) list -> Expr.t -> (Types.t, string) result
(** Type of an expression with free variables bound to the given
    types. *)
