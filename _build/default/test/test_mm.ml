(* Tests for the multimedia substrate (mirror_mm). *)

module Prng = Mirror_util.Prng
module Image = Mirror_mm.Image
module Synth = Mirror_mm.Synth
module Segment = Mirror_mm.Segment
module Histogram = Mirror_mm.Histogram
module Gabor = Mirror_mm.Gabor
module Glcm = Mirror_mm.Glcm
module Mrf = Mirror_mm.Mrf
module Fractal = Mirror_mm.Fractal
module Features = Mirror_mm.Features
module Kmeans = Mirror_mm.Kmeans
module Autoclass = Mirror_mm.Autoclass
module Vocabmap = Mirror_mm.Vocabmap

let whole img = { Segment.x = 0; y = 0; w = img.Image.width; h = img.Image.height }

let constant_image ?(v = 0.5) () = Image.init ~width:32 ~height:32 (fun ~x:_ ~y:_ -> (v, v, v))

let stripes_image () =
  Image.init ~width:32 ~height:32 (fun ~x ~y ->
      ignore y;
      let v = if x mod 8 < 4 then 0.1 else 0.9 in
      (v, v, v))

let noise_image seed =
  let g = Prng.create seed in
  Image.init ~width:32 ~height:32 (fun ~x:_ ~y:_ ->
      let v = Prng.float g 1.0 in
      (v, v, v))

(* {1 Image} *)

let test_image_get_set () =
  let img = Image.create ~width:4 ~height:3 in
  Image.set img ~x:2 ~y:1 (0.1, 0.5, 0.9);
  let r, g, b = Image.get img ~x:2 ~y:1 in
  Alcotest.(check (float 1e-9)) "r" 0.1 r;
  Alcotest.(check (float 1e-9)) "g" 0.5 g;
  Alcotest.(check (float 1e-9)) "b" 0.9 b;
  Alcotest.(check int) "npixels" 12 (Image.npixels img)

let test_image_clamp () =
  let img = Image.create ~width:2 ~height:2 in
  Image.set img ~x:0 ~y:0 (2.0, -1.0, 0.5);
  let r, g, _ = Image.get img ~x:0 ~y:0 in
  Alcotest.(check (float 1e-9)) "clamped high" 1.0 r;
  Alcotest.(check (float 1e-9)) "clamped low" 0.0 g

let test_image_bounds () =
  let img = Image.create ~width:2 ~height:2 in
  Alcotest.check_raises "out of bounds" (Invalid_argument "Image: pixel (2,0) out of 2x2")
    (fun () -> ignore (Image.get img ~x:2 ~y:0))

let test_gray () =
  let img = constant_image ~v:0.5 () in
  let g = Image.gray img in
  Alcotest.(check (float 1e-6)) "gray of gray" 0.5 g.(0);
  Alcotest.(check (float 1e-6)) "gray_at matches" g.(0) (Image.gray_at img ~x:0 ~y:0)

let test_hsv () =
  let h, s, v = Image.rgb_to_hsv (1.0, 0.0, 0.0) in
  Alcotest.(check (float 1e-6)) "red hue" 0.0 h;
  Alcotest.(check (float 1e-6)) "red sat" 1.0 s;
  Alcotest.(check (float 1e-6)) "red val" 1.0 v;
  let h, _, _ = Image.rgb_to_hsv (0.0, 1.0, 0.0) in
  Alcotest.(check (float 1e-6)) "green hue" (1.0 /. 3.0) h;
  let _, s, _ = Image.rgb_to_hsv (0.5, 0.5, 0.5) in
  Alcotest.(check (float 1e-6)) "gray sat" 0.0 s

(* {1 Synth} *)

let test_synth_deterministic () =
  let s1 = Synth.scene (Prng.create 7) () and s2 = Synth.scene (Prng.create 7) () in
  Alcotest.(check bool) "same truth" true (s1.Synth.truth = s2.Synth.truth);
  Alcotest.(check bool) "same caption" true (s1.Synth.caption = s2.Synth.caption);
  Alcotest.(check bool) "same pixels" true
    (Image.gray s1.Synth.image = Image.gray s2.Synth.image)

let test_synth_truth_covers () =
  let s = Synth.scene (Prng.create 3) ~regions:3 () in
  let area = List.fold_left (fun acc r -> acc + (r.Synth.w * r.Synth.h)) 0 s.Synth.truth in
  Alcotest.(check int) "regions tile image" (Image.npixels s.Synth.image) area

let test_synth_caption_mentions_truth () =
  let s = Synth.scene (Prng.create 11) ~regions:2 ~annotated:true () in
  match s.Synth.caption with
  | None -> Alcotest.fail "expected caption"
  | Some words ->
    List.iter
      (fun r ->
        Alcotest.(check bool)
          ("canonical class word present: " ^ Synth.class_name r.Synth.cls)
          true
          (List.mem (List.hd (Synth.class_words r.Synth.cls)) words);
        Alcotest.(check bool) "palette word present" true
          (List.mem (Synth.palette_name r.Synth.palette) words))
      s.Synth.truth

let test_synth_corpus_fraction () =
  let g = Prng.create 5 in
  let scenes = Synth.corpus g ~n:100 ~annotated_fraction:0.7 () in
  let annotated = Array.to_list scenes |> List.filter (fun s -> s.Synth.caption <> None) in
  let k = List.length annotated in
  Alcotest.(check bool) (Printf.sprintf "~70%% annotated (%d)" k) true (k > 50 && k < 90)

let test_synth_relevant () =
  let s = Synth.scene (Prng.create 13) ~regions:1 () in
  let r = List.hd s.Synth.truth in
  Alcotest.(check bool) "class word relevant" true
    (Synth.relevant s ~query_words:[ Synth.class_name r.Synth.cls ]);
  Alcotest.(check bool) "palette word relevant" true
    (Synth.relevant s ~query_words:[ Synth.palette_name r.Synth.palette ]);
  Alcotest.(check bool) "nonsense not relevant" false
    (Synth.relevant s ~query_words:[ "zzzznonsense" ])

(* {1 Segment} *)

let segments_cover img segs =
  let covered = Array.make (Image.npixels img) 0 in
  List.iter
    (fun (r : Segment.region) ->
      for y = r.Segment.y to r.Segment.y + r.Segment.h - 1 do
        for x = r.Segment.x to r.Segment.x + r.Segment.w - 1 do
          covered.((y * img.Image.width) + x) <- covered.((y * img.Image.width) + x) + 1
        done
      done)
    segs;
  Array.for_all (fun c -> c = 1) covered

let test_segment_constant_is_single () =
  let img = constant_image () in
  let segs = Segment.split img in
  Alcotest.(check int) "no split on constant" 1 (List.length segs)

let test_segment_covers () =
  let s = Synth.scene (Prng.create 17) ~regions:2 () in
  let rects = Segment.segment_flat s.Synth.image in
  Alcotest.(check bool) "rectangles tile the image exactly" true
    (segments_cover s.Synth.image rects)

let test_segment_split_variance () =
  (* an image with two flat halves splits but each half stays whole *)
  let img =
    Image.init ~width:32 ~height:32 (fun ~x ~y ->
        ignore y;
        if x < 16 then (0.1, 0.1, 0.1) else (0.9, 0.9, 0.9))
  in
  let segs = Segment.segment img in
  Alcotest.(check int) "two segments after merge" 2 (List.length segs)

let test_segment_crop () =
  let img = stripes_image () in
  let r = { Segment.x = 4; y = 8; w = 10; h = 6 } in
  let c = Segment.crop img r in
  Alcotest.(check int) "width" 10 c.Image.width;
  Alcotest.(check int) "height" 6 c.Image.height;
  Alcotest.(check (float 1e-9)) "pixels copied"
    (Image.gray_at img ~x:4 ~y:8) (Image.gray_at c ~x:0 ~y:0)

let test_region_helpers () =
  let img = constant_image ~v:0.25 () in
  let r = whole img in
  Alcotest.(check int) "pixels" 1024 (Segment.region_pixels r);
  let mr, mg, mb = Segment.mean_color img r in
  Alcotest.(check (float 1e-6)) "mean r" 0.25 mr;
  Alcotest.(check (float 1e-6)) "mean g" 0.25 mg;
  Alcotest.(check (float 1e-6)) "mean b" 0.25 mb;
  Alcotest.(check (float 1e-6)) "variance" 0.0 (Segment.color_variance img r)

(* {1 Feature extractors} *)

let test_histogram_sums () =
  let img = noise_image 23 in
  let h = Histogram.rgb img (whole img) in
  Alcotest.(check int) "dims" Histogram.rgb_dims (Array.length h);
  Alcotest.(check (float 1e-6)) "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 h);
  let h2 = Histogram.hsv img (whole img) in
  Alcotest.(check int) "hsv dims" Histogram.hsv_dims (Array.length h2);
  Alcotest.(check (float 1e-6)) "hsv sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 h2)

let test_histogram_constant_concentrates () =
  let img = constant_image ~v:0.1 () in
  let h = Histogram.rgb img (whole img) in
  Alcotest.(check (float 1e-9)) "single bin" 1.0 (Array.fold_left Float.max 0.0 h)

let test_histogram_discriminates () =
  let red = Image.init ~width:16 ~height:16 (fun ~x:_ ~y:_ -> (0.9, 0.1, 0.1)) in
  let blue = Image.init ~width:16 ~height:16 (fun ~x:_ ~y:_ -> (0.1, 0.1, 0.9)) in
  let hr = Histogram.rgb red (whole red) and hb = Histogram.rgb blue (whole blue) in
  Alcotest.(check bool) "different colours, distant histograms" true
    (Mirror_util.Vecmath.dist2 hr hb > 1.0)

let test_gabor_kernel_zero_mean () =
  let k = Gabor.kernel ~theta:0.0 ~wavelength:4.0 in
  let sum = Array.fold_left (fun acc row -> Array.fold_left ( +. ) acc row) 0.0 k in
  Alcotest.(check (float 1e-9)) "zero mean" 0.0 sum

let test_gabor_flat_no_response () =
  let img = constant_image () in
  let f = Gabor.extract img (whole img) in
  Alcotest.(check int) "dims" Gabor.dims (Array.length f);
  Array.iter (fun v -> Alcotest.(check (float 1e-6)) "flat response" 0.0 v) f

let test_gabor_stripes_respond () =
  let img = stripes_image () in
  let f = Gabor.extract img (whole img) in
  Alcotest.(check bool) "stripes excite the bank" true
    (Array.fold_left Float.max 0.0 f > 0.05)

let test_gabor_orientation_selective () =
  (* vertical stripes (varying with x) excite theta=0 more than theta=pi/2 *)
  let img = stripes_image () in
  let f = Gabor.extract img (whole img) in
  (* layout: (theta idx * wavelengths + wl idx) * 2 *)
  let horiz = f.(0) (* theta=0, wl=4, mean *) in
  let vert = f.(2 * 2 * 2) (* theta=pi/2, wl=4, mean *) in
  Alcotest.(check bool)
    (Printf.sprintf "orientation selectivity (%.4f vs %.4f)" horiz vert)
    true (horiz > 2.0 *. vert)

let test_glcm_matrix_normalised () =
  let img = noise_image 31 in
  let m = Glcm.matrix img (whole img) ~dx:1 ~dy:0 in
  let total = Array.fold_left (fun acc row -> Array.fold_left ( +. ) acc row) 0.0 m in
  Alcotest.(check (float 1e-6)) "sums to 1" 1.0 total;
  (* symmetry *)
  for i = 0 to Glcm.levels - 1 do
    for j = 0 to Glcm.levels - 1 do
      Alcotest.(check (float 1e-9)) "symmetric" m.(i).(j) m.(j).(i)
    done
  done

let test_glcm_constant () =
  let img = constant_image () in
  let f = Glcm.extract img (whole img) in
  Alcotest.(check int) "dims" Glcm.dims (Array.length f);
  Alcotest.(check (float 1e-6)) "zero contrast" 0.0 f.(0);
  Alcotest.(check (float 1e-6)) "energy 1" 1.0 f.(1);
  Alcotest.(check (float 1e-6)) "zero entropy" 0.0 f.(2)

let test_glcm_contrast_orders () =
  let flat = constant_image () in
  let noisy = noise_image 41 in
  let cf = (Glcm.extract flat (whole flat)).(0) in
  let cn = (Glcm.extract noisy (whole noisy)).(0) in
  Alcotest.(check bool) "noise has higher contrast" true (cn > cf)

let test_mrf_dims_and_constant () =
  let img = constant_image () in
  let f = Mrf.extract img (whole img) in
  Alcotest.(check int) "dims" Mrf.dims (Array.length f);
  Alcotest.(check bool) "tiny residual on constant" true (f.(4) < 1e-6)

let test_mrf_small_region_fallback () =
  let img = constant_image () in
  let f = Mrf.extract img { Segment.x = 0; y = 0; w = 2; h = 2 } in
  Alcotest.(check int) "dims" Mrf.dims (Array.length f)

let test_mrf_predictable_texture () =
  (* a smooth gradient is highly predictable: residual near zero *)
  let img =
    Image.init ~width:32 ~height:32 (fun ~x ~y ->
        let v = Float.of_int (x + y) /. 64.0 in
        (v, v, v))
  in
  let f = Mrf.extract img (whole img) in
  Alcotest.(check bool) "small residual" true (f.(4) < 0.02);
  let noisy = noise_image 51 in
  let fn = Mrf.extract noisy (whole noisy) in
  Alcotest.(check bool) "noise residual larger" true (fn.(4) > f.(4))

let test_fractal_orders () =
  let smooth =
    Image.init ~width:32 ~height:32 (fun ~x ~y ->
        let v = Float.of_int (x + y) /. 64.0 in
        (v, v, v))
  in
  let rough = noise_image 61 in
  let fs = Fractal.extract smooth (whole smooth) in
  let fr = Fractal.extract rough (whole rough) in
  Alcotest.(check int) "dims" Fractal.dims (Array.length fs);
  Alcotest.(check bool)
    (Printf.sprintf "rough dimension (%.2f) > smooth (%.2f)" fr.(0) fs.(0))
    true (fr.(0) > fs.(0));
  Alcotest.(check bool) "smooth dim >= 2ish" true (fs.(0) > 1.5 && fs.(0) < 2.6);
  Alcotest.(check bool) "rough dim <= 3ish" true (fr.(0) < 3.3)

let test_fractal_box_counts_decrease () =
  let img = noise_image 71 in
  let counts = Fractal.box_counts img (whole img) in
  Alcotest.(check bool) "has several scales" true (List.length counts >= 3);
  let rec decreasing = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "N_r decreases with box size" true (decreasing counts)

let test_features_registry () =
  Alcotest.(check int) "six daemons" 6 (List.length Features.all);
  List.iter
    (fun (e : Features.t) ->
      let img = noise_image 81 in
      let f = e.Features.extract img (whole img) in
      Alcotest.(check int) (e.Features.name ^ " dims") e.Features.dims (Array.length f))
    Features.all;
  Alcotest.(check bool) "find" true (Features.find "gabor" <> None);
  Alcotest.(check bool) "find missing" true (Features.find "nope" = None)

let test_gabor_wavelength_selectivity () =
  (* stripes of period 8 excite the wavelength-8 filter more than the
     wavelength-4 filter at the matching orientation *)
  let img = stripes_image () in
  let f = Gabor.extract img (whole img) in
  (* layout: (theta idx * |wavelengths| + wl idx) * 2; theta=0 *)
  let wl4 = f.(0) and wl8 = f.(2) in
  Alcotest.(check bool)
    (Printf.sprintf "period-8 stripes prefer wavelength 8 (%.4f vs %.4f)" wl8 wl4)
    true (wl8 > wl4)

let test_autoclass_bic_penalises_overfit () =
  (* on single-cluster data, BIC must not prefer more components *)
  let g = Prng.create 314 in
  let pts =
    Array.init 120 (fun _ -> Prng.gaussian_mv g ~mean:[| 0.0; 0.0 |] ~sigma:[| 0.5; 0.5 |])
  in
  let m1 = Autoclass.fit (Prng.create 1) ~k:1 ~restarts:1 pts in
  let m4 = Autoclass.fit (Prng.create 1) ~k:4 ~restarts:1 pts in
  Alcotest.(check bool) "more components fit no worse" true
    (m4.Autoclass.loglik >= m1.Autoclass.loglik -. 1e-6);
  Alcotest.(check bool) "but BIC prefers the simple model" true
    (Autoclass.bic m1 ~n:120 < Autoclass.bic m4 ~n:120);
  let selected = Autoclass.select (Prng.create 2) ~kmin:1 ~kmax:4 ~restarts:1 pts in
  Alcotest.(check int) "select returns 1" 1 selected.Autoclass.k

let test_synth_classes_distinguishable () =
  (* features must separate at least some class pairs: same-class images
     are closer in GLCM space than cross-class ones on average *)
  let g = Prng.create 2718 in
  let sample cls = Synth.render_texture g ~width:32 ~height:32 cls 6 (* gray palette *) in
  let feat img = Mirror_mm.Glcm.extract img (whole img) in
  let a1 = feat (sample Synth.Checker) and a2 = feat (sample Synth.Checker) in
  let b = feat (sample Synth.Gradient) in
  let d_same = Mirror_util.Vecmath.dist2 a1 a2 in
  let d_cross = Mirror_util.Vecmath.dist2 a1 b in
  Alcotest.(check bool)
    (Printf.sprintf "checker/checker (%.4f) closer than checker/gradient (%.4f)" d_same d_cross)
    true (d_same < d_cross)

(* {1 Clustering} *)

let two_blobs g n =
  Array.init n (fun i ->
      if i mod 2 = 0 then Prng.gaussian_mv g ~mean:[| 0.0; 0.0 |] ~sigma:[| 0.3; 0.3 |]
      else Prng.gaussian_mv g ~mean:[| 5.0; 5.0 |] ~sigma:[| 0.3; 0.3 |])

let test_kmeans_two_blobs () =
  let g = Prng.create 91 in
  let pts = two_blobs g 200 in
  let r = Kmeans.run g ~k:2 pts in
  (* all even-index points together, all odd-index points together *)
  let c0 = r.Kmeans.assign.(0) in
  let pure = ref true in
  Array.iteri
    (fun i c -> if (i mod 2 = 0 && c <> c0) || (i mod 2 = 1 && c = c0) then pure := false)
    r.Kmeans.assign;
  Alcotest.(check bool) "perfect separation" true !pure

let test_kmeans_inertia_decreases_with_k () =
  let g = Prng.create 92 in
  let pts = two_blobs g 100 in
  let r1 = Kmeans.run (Prng.create 1) ~k:1 pts in
  let r2 = Kmeans.run (Prng.create 1) ~k:2 pts in
  Alcotest.(check bool) "k=2 fits better" true (r2.Kmeans.inertia < r1.Kmeans.inertia)

let test_kmeans_k_clamped () =
  let g = Prng.create 93 in
  let pts = [| [| 0.0 |]; [| 1.0 |] |] in
  let r = Kmeans.run g ~k:10 pts in
  Alcotest.(check int) "k clamped to n" 2 (Array.length r.Kmeans.centroids)

let test_kmeans_rejects_empty () =
  Alcotest.check_raises "no points" (Invalid_argument "Kmeans.run: no points") (fun () ->
      ignore (Kmeans.run (Prng.create 1) ~k:2 [||]))

let test_autoclass_loglik_monotone () =
  let g = Prng.create 94 in
  let pts = two_blobs g 120 in
  let m = Autoclass.fit g ~k:2 ~restarts:1 pts in
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) (Printf.sprintf "EM non-decreasing (%.3f -> %.3f)" a b) true
        (b >= a -. 1e-6);
      check rest
    | _ -> ()
  in
  check m.Autoclass.loglik_trace

let test_autoclass_posterior_sums () =
  let g = Prng.create 95 in
  let pts = two_blobs g 80 in
  let m = Autoclass.fit g ~k:3 ~restarts:1 pts in
  let p = Autoclass.posterior m pts.(0) in
  Alcotest.(check (float 1e-6)) "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 p)

let test_autoclass_select_finds_two () =
  let g = Prng.create 96 in
  let pts = two_blobs g 200 in
  let m = Autoclass.select g ~kmin:1 ~kmax:4 ~restarts:1 pts in
  Alcotest.(check int) "BIC picks 2 classes" 2 m.Autoclass.k

let test_autoclass_classify_separates () =
  let g = Prng.create 97 in
  let pts = two_blobs g 100 in
  let m = Autoclass.fit g ~k:2 ~restarts:1 pts in
  let c_even = Autoclass.classify m pts.(0) in
  let errors = ref 0 in
  Array.iteri
    (fun i p ->
      let c = Autoclass.classify m p in
      let expect_even = i mod 2 = 0 in
      if (c = c_even) <> expect_even then incr errors)
    pts;
  Alcotest.(check int) "no classification errors" 0 !errors

(* {1 Vocabmap} *)

let test_vocabmap_round_trip () =
  Alcotest.(check string) "term" "gabor_21" (Vocabmap.term ~space:"gabor" 21);
  Alcotest.(check (option (pair string int))) "parse" (Some ("gabor", 21))
    (Vocabmap.parse_term "gabor_21");
  Alcotest.(check (option (pair string int))) "parse nested underscore"
    (Some ("rgb_hist", 3))
    (Vocabmap.parse_term "rgb_hist_3");
  Alcotest.(check (option (pair string int))) "reject plain word" None
    (Vocabmap.parse_term "stripes")

let test_vocabmap_words () =
  let g = Prng.create 98 in
  let pts = two_blobs g 60 in
  let m = Autoclass.fit g ~k:2 ~restarts:1 pts in
  let soft = Vocabmap.soft_words m ~space:"rgb" pts in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 soft in
  Alcotest.(check (float 1e-3)) "soft tfs sum to n" 60.0 total;
  let hard = Vocabmap.hard_words m ~space:"rgb" pts in
  let total_h = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 hard in
  Alcotest.(check (float 1e-9)) "hard tfs sum to n" 60.0 total_h

(* {1 PPM serialisation} *)

module Ppm = Mirror_mm.Ppm

let images_close a b =
  a.Image.width = b.Image.width
  && a.Image.height = b.Image.height
  &&
  let ok = ref true in
  for y = 0 to a.Image.height - 1 do
    for x = 0 to a.Image.width - 1 do
      let r1, g1, b1 = Image.get a ~x ~y and r2, g2, b2 = Image.get b ~x ~y in
      (* 8-bit quantisation error bound *)
      if
        Float.abs (r1 -. r2) > 1.0 /. 254.0
        || Float.abs (g1 -. g2) > 1.0 /. 254.0
        || Float.abs (b1 -. b2) > 1.0 /. 254.0
      then ok := false
    done
  done;
  !ok

let test_ppm_round_trip () =
  let img = Synth.render_texture (Prng.create 5) ~width:17 ~height:9 Synth.Blobs 2 in
  match Ppm.decode (Ppm.encode img) with
  | Ok back -> Alcotest.(check bool) "round trip within quantisation" true (images_close img back)
  | Error e -> Alcotest.fail e

let test_ppm_file_round_trip () =
  let img = Synth.render_texture (Prng.create 6) ~width:8 ~height:8 Synth.Waves 1 in
  let path = Filename.temp_file "mirror" ".ppm" in
  (match Ppm.save img path with Ok () -> () | Error e -> Alcotest.fail e);
  (match Ppm.load path with
  | Ok back -> Alcotest.(check bool) "file round trip" true (images_close img back)
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_ppm_ascii () =
  let src = "P3
# a comment
2 1
255
255 0 0   0 0 255
" in
  match Ppm.decode src with
  | Ok img ->
    let r, _, _ = Image.get img ~x:0 ~y:0 in
    let _, _, b = Image.get img ~x:1 ~y:0 in
    Alcotest.(check (float 1e-6)) "red" 1.0 r;
    Alcotest.(check (float 1e-6)) "blue" 1.0 b
  | Error e -> Alcotest.fail e

let test_ppm_errors () =
  let bad s = match Ppm.decode s with Error _ -> () | Ok _ -> Alcotest.failf "%S should fail" s in
  bad "";
  bad "P5
1 1
255
x";
  bad "P6
2 2
255
short";
  bad "P6
0 2
255
"

(* {1 QCheck properties} *)

let prop_segment_covers =
  QCheck.Test.make ~name:"segmentation tiles every image" ~count:25 QCheck.small_int
    (fun seed ->
      let s = Synth.scene (Prng.create seed) ~regions:(1 + (seed mod 3)) () in
      segments_cover s.Synth.image (Segment.segment_flat s.Synth.image))

let prop_histogram_normalised =
  QCheck.Test.make ~name:"rgb histogram is a distribution" ~count:25 QCheck.small_int
    (fun seed ->
      let s = Synth.scene (Prng.create seed) () in
      let h = Histogram.rgb s.Synth.image (whole s.Synth.image) in
      Float.abs (Array.fold_left ( +. ) 0.0 h -. 1.0) < 1e-6
      && Array.for_all (fun v -> v >= 0.0) h)

let prop_posterior_distribution =
  QCheck.Test.make ~name:"GMM posterior is a distribution" ~count:25 QCheck.small_int
    (fun seed ->
      let g = Prng.create seed in
      let pts = two_blobs g 40 in
      let m = Autoclass.fit g ~k:3 ~restarts:1 ~max_iter:20 pts in
      Array.for_all
        (fun p ->
          let post = Autoclass.posterior m p in
          Float.abs (Array.fold_left ( +. ) 0.0 post -. 1.0) < 1e-6
          && Array.for_all (fun v -> v >= 0.0 && v <= 1.0 +. 1e-9) post)
        pts)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "mirror_mm"
    [
      ( "image",
        [
          Alcotest.test_case "get/set" `Quick test_image_get_set;
          Alcotest.test_case "clamping" `Quick test_image_clamp;
          Alcotest.test_case "bounds check" `Quick test_image_bounds;
          Alcotest.test_case "gray" `Quick test_gray;
          Alcotest.test_case "rgb->hsv" `Quick test_hsv;
        ] );
      ( "synth",
        [
          Alcotest.test_case "deterministic" `Quick test_synth_deterministic;
          Alcotest.test_case "truth tiles image" `Quick test_synth_truth_covers;
          Alcotest.test_case "caption mentions truth" `Quick test_synth_caption_mentions_truth;
          Alcotest.test_case "corpus annotation fraction" `Quick test_synth_corpus_fraction;
          Alcotest.test_case "relevance oracle" `Quick test_synth_relevant;
        ] );
      ( "segment",
        [
          Alcotest.test_case "constant image stays whole" `Quick test_segment_constant_is_single;
          Alcotest.test_case "coverage invariant" `Quick test_segment_covers;
          Alcotest.test_case "split + merge on two halves" `Quick test_segment_split_variance;
          Alcotest.test_case "crop" `Quick test_segment_crop;
          Alcotest.test_case "region helpers" `Quick test_region_helpers;
        ] );
      ( "features",
        [
          Alcotest.test_case "histograms are distributions" `Quick test_histogram_sums;
          Alcotest.test_case "constant image concentrates" `Quick test_histogram_constant_concentrates;
          Alcotest.test_case "colour discrimination" `Quick test_histogram_discriminates;
          Alcotest.test_case "gabor kernel zero mean" `Quick test_gabor_kernel_zero_mean;
          Alcotest.test_case "gabor flat no response" `Quick test_gabor_flat_no_response;
          Alcotest.test_case "gabor stripes respond" `Quick test_gabor_stripes_respond;
          Alcotest.test_case "gabor orientation selectivity" `Quick test_gabor_orientation_selective;
          Alcotest.test_case "glcm normalised + symmetric" `Quick test_glcm_matrix_normalised;
          Alcotest.test_case "glcm constant image" `Quick test_glcm_constant;
          Alcotest.test_case "glcm contrast ordering" `Quick test_glcm_contrast_orders;
          Alcotest.test_case "mrf constant" `Quick test_mrf_dims_and_constant;
          Alcotest.test_case "mrf small-region fallback" `Quick test_mrf_small_region_fallback;
          Alcotest.test_case "mrf predictability ordering" `Quick test_mrf_predictable_texture;
          Alcotest.test_case "fractal smooth vs rough" `Quick test_fractal_orders;
          Alcotest.test_case "fractal box counts decrease" `Quick test_fractal_box_counts_decrease;
          Alcotest.test_case "registry" `Quick test_features_registry;
          Alcotest.test_case "gabor wavelength selectivity" `Quick test_gabor_wavelength_selectivity;
          Alcotest.test_case "BIC penalises overfitting" `Quick test_autoclass_bic_penalises_overfit;
          Alcotest.test_case "classes distinguishable" `Quick test_synth_classes_distinguishable;
        ] );
      ( "clustering",
        [
          Alcotest.test_case "kmeans two blobs" `Quick test_kmeans_two_blobs;
          Alcotest.test_case "kmeans inertia vs k" `Quick test_kmeans_inertia_decreases_with_k;
          Alcotest.test_case "kmeans k clamped" `Quick test_kmeans_k_clamped;
          Alcotest.test_case "kmeans rejects empty" `Quick test_kmeans_rejects_empty;
          Alcotest.test_case "EM log-likelihood monotone" `Quick test_autoclass_loglik_monotone;
          Alcotest.test_case "posterior sums to 1" `Quick test_autoclass_posterior_sums;
          Alcotest.test_case "BIC selects 2 blobs" `Quick test_autoclass_select_finds_two;
          Alcotest.test_case "classification separates" `Quick test_autoclass_classify_separates;
        ] );
      ( "ppm",
        [
          Alcotest.test_case "binary round trip" `Quick test_ppm_round_trip;
          Alcotest.test_case "file round trip" `Quick test_ppm_file_round_trip;
          Alcotest.test_case "ascii P3 with comments" `Quick test_ppm_ascii;
          Alcotest.test_case "malformed inputs" `Quick test_ppm_errors;
        ] );
      ( "vocabmap",
        [
          Alcotest.test_case "term round-trip" `Quick test_vocabmap_round_trip;
          Alcotest.test_case "word bags" `Quick test_vocabmap_words;
        ] );
      ( "properties",
        qc [ prop_segment_covers; prop_histogram_normalised; prop_posterior_distribution ] );
    ]
