(* Tests for the inference-network IR engine (mirror_ir). *)

module Tokenize = Mirror_ir.Tokenize
module Stopwords = Mirror_ir.Stopwords
module Porter = Mirror_ir.Porter
module Vocab = Mirror_ir.Vocab
module Space = Mirror_ir.Space
module Belief = Mirror_ir.Belief
module Querynet = Mirror_ir.Querynet
module Index = Mirror_ir.Index
module Search = Mirror_ir.Search
module Bat = Mirror_bat.Bat
module Atom = Mirror_bat.Atom

(* {1 Porter} *)

let porter_vectors =
  [
    ("caresses", "caress"); ("ponies", "poni"); ("ties", "ti"); ("cats", "cat");
    ("agreed", "agre"); ("plastered", "plaster"); ("motoring", "motor");
    ("hopping", "hop"); ("falling", "fall"); ("hissing", "hiss"); ("filing", "file");
    ("happy", "happi"); ("sky", "sky"); ("relational", "relat");
    ("conditional", "condit"); ("digitizer", "digit"); ("operator", "oper");
    ("triplicate", "triplic"); ("formalize", "formal"); ("hopeful", "hope");
    ("goodness", "good"); ("adjustable", "adjust"); ("replacement", "replac");
    ("adoption", "adopt"); ("effective", "effect"); ("cease", "ceas");
    ("feed", "feed"); ("bled", "bled"); ("sing", "sing"); ("controlling", "control");
    ("relativity", "rel"); ("probability", "probabl"); ("multimedia", "multimedia");
    ("databases", "databas"); ("retrieval", "retriev"); ("architecture", "architectur");
    ("annotations", "annot"); ("clustering", "cluster"); ("segmentation", "segment");
    ("thesaurus", "thesauru"); ("inference", "infer"); ("probabilistic", "probabilist");
  ]

let test_porter_vectors () =
  List.iter
    (fun (w, expect) -> Alcotest.(check string) ("stem " ^ w) expect (Porter.stem w))
    porter_vectors

let test_porter_short_words () =
  Alcotest.(check string) "1-char" "a" (Porter.stem "a");
  Alcotest.(check string) "2-char" "is" (Porter.stem "is")

let test_porter_lowercases () = Alcotest.(check string) "upper" "cat" (Porter.stem "CATS")

let prop_porter_sane =
  QCheck.Test.make ~name:"stem is non-empty, lowercase, no longer than input" ~count:300
    QCheck.(string_gen_of_size Gen.(int_range 1 12) Gen.(char_range 'a' 'z'))
    (fun w ->
      let s = Porter.stem w in
      String.length s > 0
      && String.length s <= String.length w
      && String.lowercase_ascii s = s)

(* {1 Tokenize / stopwords} *)

let test_tokenize_words () =
  Alcotest.(check (list string)) "words" [ "striped"; "cats"; "42" ]
    (Tokenize.words "Striped, cats: 42!")

let test_tokenize_terms () =
  Alcotest.(check (list string)) "stop + stem" [ "stripe"; "cat" ]
    (Tokenize.terms "the striped cats")

let test_tokenize_no_stem () =
  Alcotest.(check (list string)) "raw" [ "striped"; "cats" ]
    (Tokenize.terms ~stem:false "the striped cats")

let test_tf_bag () =
  Alcotest.(check (list (pair string (float 1e-9)))) "bag"
    [ ("cat", 2.0); ("dog", 1.0) ]
    (Tokenize.tf_bag "cats cat dog the")

let test_stopwords () =
  Alcotest.(check bool) "the" true (Stopwords.is_stopword "The");
  Alcotest.(check bool) "cat" false (Stopwords.is_stopword "cat")

(* {1 Vocab} *)

let test_vocab () =
  let v = Vocab.create () in
  let a = Vocab.intern v "alpha" in
  let b = Vocab.intern v "beta" in
  Alcotest.(check int) "dense ids" 0 a;
  Alcotest.(check int) "next id" 1 b;
  Alcotest.(check int) "intern is idempotent" a (Vocab.intern v "alpha");
  Alcotest.(check (option int)) "find" (Some 1) (Vocab.find v "beta");
  Alcotest.(check (option int)) "find missing" None (Vocab.find v "gamma");
  Alcotest.(check string) "word" "beta" (Vocab.word v 1);
  Alcotest.(check int) "size" 2 (Vocab.size v)

let test_vocab_growth () =
  let v = Vocab.create () in
  for i = 0 to 999 do
    ignore (Vocab.intern v (Printf.sprintf "w%d" i))
  done;
  Alcotest.(check int) "1000 terms" 1000 (Vocab.size v);
  Alcotest.(check string) "w500" "w500" (Vocab.word v 500)

(* {1 Belief} *)

let test_belief_bounds () =
  let b = Belief.belief ~tf:3.0 ~df:2 ~ndocs:100 ~doclen:10.0 ~avg_doclen:10.0 in
  Alcotest.(check bool) "in (0.4, 1)" true (b > 0.4 && b < 1.0)

let test_belief_absent_term () =
  Alcotest.(check (float 1e-9)) "tf=0 gives default" Belief.default_belief
    (Belief.belief ~tf:0.0 ~df:5 ~ndocs:100 ~doclen:10.0 ~avg_doclen:10.0);
  Alcotest.(check (float 1e-9)) "df=0 gives default" Belief.default_belief
    (Belief.belief ~tf:3.0 ~df:0 ~ndocs:100 ~doclen:10.0 ~avg_doclen:10.0);
  Alcotest.(check (float 1e-9)) "empty collection gives default" Belief.default_belief
    (Belief.belief ~tf:3.0 ~df:0 ~ndocs:0 ~doclen:0.0 ~avg_doclen:0.0)

let test_belief_monotone_tf () =
  let b tf = Belief.belief ~tf ~df:5 ~ndocs:100 ~doclen:10.0 ~avg_doclen:10.0 in
  Alcotest.(check bool) "more tf, more belief" true (b 5.0 > b 1.0)

let test_belief_rare_terms_win () =
  let b df = Belief.belief ~tf:2.0 ~df ~ndocs:100 ~doclen:10.0 ~avg_doclen:10.0 in
  Alcotest.(check bool) "rarer term scores higher" true (b 1 > b 50)

let test_belief_long_docs_damped () =
  let b doclen = Belief.belief ~tf:2.0 ~df:5 ~ndocs:100 ~doclen ~avg_doclen:10.0 in
  Alcotest.(check bool) "longer doc, lower belief" true (b 5.0 > b 50.0)

let test_combine_rules () =
  Alcotest.(check (float 1e-9)) "sum is mean" 0.5 (Belief.Combine.sum [ 0.4; 0.6 ]);
  Alcotest.(check (float 1e-9)) "empty sum is default" Belief.default_belief
    (Belief.Combine.sum []);
  Alcotest.(check (float 1e-9)) "and is product" 0.24 (Belief.Combine.and_ [ 0.4; 0.6 ]);
  Alcotest.(check (float 1e-9)) "or" 0.76 (Belief.Combine.or_ [ 0.4; 0.6 ]);
  Alcotest.(check (float 1e-9)) "not" 0.3 (Belief.Combine.not_ 0.7);
  Alcotest.(check (float 1e-9)) "max" 0.6 (Belief.Combine.max [ 0.4; 0.6 ]);
  Alcotest.(check (float 1e-9)) "wsum"
    ((0.4 +. (2.0 *. 0.7)) /. 3.0)
    (Belief.Combine.wsum [ (1.0, 0.4); (2.0, 0.7) ])

let prop_belief_bounded =
  QCheck.Test.make ~name:"belief always in [0.4, 1)" ~count:500
    QCheck.(
      quad (float_range 0.0 50.0) (int_range 0 100) (int_range 0 100) (float_range 0.0 100.0))
    (fun (tf, df, ndocs, doclen) ->
      let b = Belief.belief ~tf ~df ~ndocs ~doclen ~avg_doclen:10.0 in
      b >= Belief.default_belief -. 1e-9 && b < 1.0)

(* {1 Querynet} *)

let test_querynet_flat () =
  let q = Querynet.flat [ "a"; "b" ] in
  Alcotest.(check (list (pair string (float 1e-9)))) "terms" [ ("a", 1.0); ("b", 1.0) ]
    (Querynet.terms q)

let test_querynet_eval () =
  let oracle = function "a" -> 0.8 | "b" -> 0.4 | _ -> 0.0 in
  Alcotest.(check (float 1e-9)) "sum" 0.6 (Querynet.eval oracle (Querynet.flat [ "a"; "b" ]));
  Alcotest.(check (float 1e-9)) "and" 0.32
    (Querynet.eval oracle (Querynet.And [ Querynet.Term ("a", 1.0); Querynet.Term ("b", 1.0) ]));
  Alcotest.(check (float 1e-9)) "weighted sum" ((0.8 +. (3.0 *. 0.4)) /. 4.0)
    (Querynet.eval oracle (Querynet.Sum [ Querynet.Term ("a", 1.0); Querynet.Term ("b", 3.0) ]))

let test_querynet_parse () =
  (match Querynet.of_string "cat dog" with
  | Ok (Querynet.Sum [ Querynet.Term ("cat", 1.0); Querynet.Term ("dog", 1.0) ]) -> ()
  | Ok other -> Alcotest.failf "unexpected parse: %s" (Querynet.to_string other)
  | Error e -> Alcotest.fail e);
  (match Querynet.of_string "#sum( cat dog^2.5 #and( a b ) #not( c ) )" with
  | Ok
      (Querynet.Sum
        [
          Querynet.Term ("cat", 1.0);
          Querynet.Term ("dog", 2.5);
          Querynet.And [ Querynet.Term ("a", 1.0); Querynet.Term ("b", 1.0) ];
          Querynet.Not (Querynet.Term ("c", 1.0));
        ]) ->
    ()
  | Ok other -> Alcotest.failf "unexpected parse: %s" (Querynet.to_string other)
  | Error e -> Alcotest.fail e)

let test_querynet_parse_errors () =
  let is_error s = match Querynet.of_string s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "empty" true (is_error "");
  Alcotest.(check bool) "unknown op" true (is_error "#frob( a )");
  Alcotest.(check bool) "missing paren" true (is_error "#sum( a");
  Alcotest.(check bool) "not arity" true (is_error "#not( a b )")

let test_querynet_round_trip () =
  let s = "#sum( cat dog^2.5 #and( a b ) #not( c ) #max( d e ) )" in
  match Querynet.of_string s with
  | Error e -> Alcotest.fail e
  | Ok q -> (
    match Querynet.of_string (Querynet.to_string q) with
    | Error e -> Alcotest.fail e
    | Ok q2 -> Alcotest.(check bool) "round trip" true (q = q2))

(* {1 Space} *)

let test_space_stats () =
  let sp = Space.create "s" in
  let ids = Space.add_doc sp ~doc:0 [ ("cat", 2.0); ("dog", 1.0) ] in
  let _ = Space.add_doc sp ~doc:1 [ ("cat", 1.0) ] in
  Alcotest.(check int) "ndocs" 2 (Space.ndocs sp);
  Alcotest.(check int) "df cat" 2 (Space.df sp (List.nth ids 0));
  Alcotest.(check int) "df dog" 1 (Space.df sp (List.nth ids 1));
  Alcotest.(check (float 1e-9)) "doclen 0" 3.0 (Space.doc_len sp 0);
  Alcotest.(check (float 1e-9)) "avg len" 2.0 (Space.avg_doc_len sp);
  Alcotest.(check bool) "mem" true (Space.mem_doc sp 0);
  Alcotest.(check bool) "not mem" false (Space.mem_doc sp 9)

let test_space_duplicate_doc () =
  let sp = Space.create "s" in
  ignore (Space.add_doc sp ~doc:0 [ ("x", 1.0) ]);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Space.add_doc: document 0 already registered in \"s\"") (fun () ->
      ignore (Space.add_doc sp ~doc:0 [ ("y", 1.0) ]))

let test_space_df_counts_docs_not_occurrences () =
  let sp = Space.create "s" in
  let ids = Space.add_doc sp ~doc:0 [ ("cat", 5.0); ("cat2", 1.0) ] in
  ignore ids;
  let id = Option.get (Vocab.find (Space.vocab sp) "cat") in
  Alcotest.(check int) "df 1 despite tf 5" 1 (Space.df sp id)

(* {1 Index + Search} *)

let small_index () =
  let idx = Index.create "lib" in
  Index.add_doc idx ~doc:0 [ ("cat", 2.0); ("stripe", 1.0) ];
  Index.add_doc idx ~doc:1 [ ("dog", 1.0); ("stripe", 1.0) ];
  Index.add_doc idx ~doc:2 [ ("fish", 3.0) ];
  idx

let test_index_postings () =
  let idx = small_index () in
  Alcotest.(check (list (pair int (float 1e-9)))) "stripe postings"
    [ (0, 1.0); (1, 1.0) ]
    (Index.postings idx "stripe");
  Alcotest.(check (list (pair int (float 1e-9)))) "unknown term" [] (Index.postings idx "zz");
  Alcotest.(check (float 1e-9)) "doc_tf" 2.0 (Index.doc_tf idx ~doc:0 ~term:"cat");
  Alcotest.(check (float 1e-9)) "doc_tf absent" 0.0 (Index.doc_tf idx ~doc:1 ~term:"cat");
  Alcotest.(check int) "ndocs" 3 (Index.ndocs idx);
  Alcotest.(check (list int)) "docs in order" [ 0; 1; 2 ] (Index.docs idx)

let test_search_ranks_match_first () =
  let idx = small_index () in
  let hits = Search.run idx (Querynet.flat [ "cat" ]) in
  Alcotest.(check int) "cat doc first" 0 (List.hd hits).Search.doc;
  Alcotest.(check int) "all docs scored" 3 (List.length hits);
  let top = (List.hd hits).Search.score in
  let rest = List.tl hits |> List.map (fun h -> h.Search.score) in
  List.iter (fun s -> Alcotest.(check bool) "descending" true (s <= top)) rest

let test_search_limit () =
  let idx = small_index () in
  Alcotest.(check int) "limit" 2 (List.length (Search.run idx ~limit:2 (Querynet.flat [ "stripe" ])))

let test_search_default_for_nonmatch () =
  let idx = small_index () in
  let hits = Search.run idx (Querynet.flat [ "cat" ]) in
  let doc2 = List.find (fun h -> h.Search.doc = 2) hits in
  Alcotest.(check (float 1e-9)) "non-matching doc gets default" Belief.default_belief
    doc2.Search.score

let test_search_multi_term_beats_single () =
  let idx = small_index () in
  let hits = Search.run idx (Querynet.flat [ "cat"; "stripe" ]) in
  Alcotest.(check int) "doc 0 has both terms" 0 (List.hd hits).Search.doc;
  let d0 = List.hd hits and d1 = List.nth hits 1 in
  Alcotest.(check int) "doc 1 has one term" 1 d1.Search.doc;
  Alcotest.(check bool) "strictly better" true (d0.Search.score > d1.Search.score)

let test_run_indexed_equals_run () =
  let idx = small_index () in
  List.iter
    (fun net ->
      let a = Search.run idx net in
      let b = Search.run_indexed idx net in
      Alcotest.(check int) "same length" (List.length a) (List.length b);
      List.iter2
        (fun x y ->
          Alcotest.(check int) "same doc" x.Search.doc y.Search.doc;
          Alcotest.(check (float 1e-12)) "same score" x.Search.score y.Search.score)
        a b)
    [
      Querynet.flat [ "cat" ];
      Querynet.flat [ "stripe"; "fish" ];
      Querynet.And [ Querynet.Term ("cat", 1.0); Querynet.Term ("stripe", 1.0) ];
      Querynet.Not (Querynet.Term ("dog", 1.0));
      Querynet.flat [ "unknownterm" ];
    ]

let prop_run_indexed_equals_run =
  QCheck.Test.make ~name:"indexed retrieval = exhaustive retrieval" ~count:100
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 8)
           (small_list (QCheck.oneofa [| "a"; "b"; "c"; "d" |])))
        (small_list (QCheck.oneofa [| "a"; "b"; "z" |])))
    (fun (docs, qterms) ->
      let idx = Index.create "p" in
      List.iteri
        (fun i words ->
          Index.add_doc idx ~doc:i (Tokenize.bag_of_words words))
        docs;
      let net = Querynet.flat qterms in
      Search.run idx net = Search.run_indexed idx net)

(* {1 Physical getbl operator} *)

let test_getbl_pairs () =
  let idx = small_index () in
  let sp = Index.space idx in
  let occ_ctx, occ_term, occ_tf, len = Index.to_bats idx ~base:1000 in
  let dom =
    Bat.of_pairs Atom.TOid Atom.TOid
      [ (Atom.Oid 0, Atom.Oid 0); (Atom.Oid 1, Atom.Oid 1); (Atom.Oid 2, Atom.Oid 2) ]
  in
  (* a two-term query attached to every context *)
  let qlink =
    Bat.of_pairs Atom.TOid Atom.TOid
      (List.concat_map
         (fun c -> [ (Atom.Oid (10 + (2 * c)), Atom.Oid c); (Atom.Oid (11 + (2 * c)), Atom.Oid c) ])
         [ 0; 1; 2 ])
  in
  let qval =
    Bat.of_pairs Atom.TOid Atom.TStr
      (List.concat_map
         (fun c -> [ (Atom.Oid (10 + (2 * c)), Atom.Str "cat"); (Atom.Oid (11 + (2 * c)), Atom.Str "zz") ])
         [ 0; 1; 2 ])
  in
  let r = Search.getbl_pairs ~space:sp ~occ_ctx ~occ_term ~occ_tf ~len ~dom ~qlink ~qval in
  (* |dom| x |query| rows, ctx-major *)
  Alcotest.(check int) "rows" 6 (Bat.count r);
  Alcotest.(check int) "first ctx" 0 (Atom.as_oid (Bat.head_at r 0));
  (* doc 0 matches cat: belief > default; unknown term "zz" gives default *)
  let b_cat = Atom.as_float (Bat.tail_at r 0) in
  let b_zz = Atom.as_float (Bat.tail_at r 1) in
  Alcotest.(check bool) "cat belief above default" true (b_cat > Belief.default_belief);
  Alcotest.(check (float 1e-9)) "unknown term default" Belief.default_belief b_zz;
  (* doc 2 has neither: both defaults *)
  let b20 = Atom.as_float (Bat.tail_at r 4) and b21 = Atom.as_float (Bat.tail_at r 5) in
  Alcotest.(check (float 1e-9)) "doc2 default" Belief.default_belief b20;
  Alcotest.(check (float 1e-9)) "doc2 default 2" Belief.default_belief b21

let test_getbl_agrees_with_oracle () =
  let idx = small_index () in
  let sp = Index.space idx in
  let occ_ctx, occ_term, occ_tf, len = Index.to_bats idx ~base:1000 in
  let dom =
    Bat.of_pairs Atom.TOid Atom.TOid
      [ (Atom.Oid 0, Atom.Oid 0); (Atom.Oid 1, Atom.Oid 1); (Atom.Oid 2, Atom.Oid 2) ]
  in
  let qlink =
    Bat.of_pairs Atom.TOid Atom.TOid
      (List.map (fun c -> (Atom.Oid (10 + c), Atom.Oid c)) [ 0; 1; 2 ])
  in
  let qval =
    Bat.of_pairs Atom.TOid Atom.TStr
      (List.map (fun c -> (Atom.Oid (10 + c), Atom.Str "stripe")) [ 0; 1; 2 ])
  in
  let r = Search.getbl_pairs ~space:sp ~occ_ctx ~occ_term ~occ_tf ~len ~dom ~qlink ~qval in
  List.iteri
    (fun i doc ->
      let expected = Search.belief_oracle idx ~doc "stripe" in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "doc %d matches oracle" doc)
        expected
        (Atom.as_float (Bat.tail_at r i)))
    [ 0; 1; 2 ]

let test_getbl_empty_query () =
  let idx = small_index () in
  let sp = Index.space idx in
  let occ_ctx, occ_term, occ_tf, len = Index.to_bats idx ~base:0 in
  let dom = Bat.of_pairs Atom.TOid Atom.TOid [ (Atom.Oid 0, Atom.Oid 0) ] in
  let qlink = Bat.empty Atom.TOid Atom.TOid in
  let qval = Bat.empty Atom.TOid Atom.TStr in
  let r = Search.getbl_pairs ~space:sp ~occ_ctx ~occ_term ~occ_tf ~len ~dom ~qlink ~qval in
  Alcotest.(check int) "no rows" 0 (Bat.count r)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "mirror_ir"
    [
      ( "porter",
        [
          Alcotest.test_case "reference vectors" `Quick test_porter_vectors;
          Alcotest.test_case "short words unchanged" `Quick test_porter_short_words;
          Alcotest.test_case "lowercases" `Quick test_porter_lowercases;
        ] );
      ( "tokenize",
        [
          Alcotest.test_case "words" `Quick test_tokenize_words;
          Alcotest.test_case "terms (stop + stem)" `Quick test_tokenize_terms;
          Alcotest.test_case "terms without stemming" `Quick test_tokenize_no_stem;
          Alcotest.test_case "tf bag" `Quick test_tf_bag;
          Alcotest.test_case "stopwords" `Quick test_stopwords;
        ] );
      ( "vocab",
        [
          Alcotest.test_case "basics" `Quick test_vocab;
          Alcotest.test_case "growth" `Quick test_vocab_growth;
        ] );
      ( "belief",
        [
          Alcotest.test_case "bounds" `Quick test_belief_bounds;
          Alcotest.test_case "absent term defaults" `Quick test_belief_absent_term;
          Alcotest.test_case "monotone in tf" `Quick test_belief_monotone_tf;
          Alcotest.test_case "rare terms win" `Quick test_belief_rare_terms_win;
          Alcotest.test_case "long docs damped" `Quick test_belief_long_docs_damped;
          Alcotest.test_case "combination rules" `Quick test_combine_rules;
        ] );
      ( "querynet",
        [
          Alcotest.test_case "flat" `Quick test_querynet_flat;
          Alcotest.test_case "eval" `Quick test_querynet_eval;
          Alcotest.test_case "parse" `Quick test_querynet_parse;
          Alcotest.test_case "parse errors" `Quick test_querynet_parse_errors;
          Alcotest.test_case "print/parse round-trip" `Quick test_querynet_round_trip;
        ] );
      ( "space",
        [
          Alcotest.test_case "statistics" `Quick test_space_stats;
          Alcotest.test_case "duplicate doc rejected" `Quick test_space_duplicate_doc;
          Alcotest.test_case "df semantics" `Quick test_space_df_counts_docs_not_occurrences;
        ] );
      ( "search",
        [
          Alcotest.test_case "postings" `Quick test_index_postings;
          Alcotest.test_case "match ranks first" `Quick test_search_ranks_match_first;
          Alcotest.test_case "limit" `Quick test_search_limit;
          Alcotest.test_case "non-match gets default" `Quick test_search_default_for_nonmatch;
          Alcotest.test_case "two terms beat one" `Quick test_search_multi_term_beats_single;
          Alcotest.test_case "indexed = exhaustive" `Quick test_run_indexed_equals_run;
        ] );
      ( "getbl",
        [
          Alcotest.test_case "pair layout and defaults" `Quick test_getbl_pairs;
          Alcotest.test_case "agrees with oracle" `Quick test_getbl_agrees_with_oracle;
          Alcotest.test_case "empty query" `Quick test_getbl_empty_query;
        ] );
      ("properties", qc [ prop_porter_sane; prop_belief_bounded; prop_run_indexed_equals_run ]);
    ]
