(* Tests for the association thesaurus (mirror_thesaurus). *)

module Assoc = Mirror_thesaurus.Assoc
module Concepts = Mirror_thesaurus.Concepts
module Emim = Mirror_thesaurus.Emim
module Adapt = Mirror_thesaurus.Adapt
module Querynet = Mirror_ir.Querynet

(* A tiny dual-coded corpus: "zebra" images carry cluster gabor_0,
   "sky" images carry cluster rgb_1, one unannotated image, one image
   with both. *)
let evidence =
  [
    { Assoc.doc = 0; text = [ ("zebra", 2.0); ("stripe", 1.0) ]; visual = [ ("gabor_0", 3.0) ] };
    { Assoc.doc = 1; text = [ ("zebra", 1.0) ]; visual = [ ("gabor_0", 2.0) ] };
    { Assoc.doc = 2; text = [ ("sky", 2.0); ("blue", 1.0) ]; visual = [ ("rgb_1", 4.0) ] };
    { Assoc.doc = 3; text = []; visual = [ ("gabor_0", 1.0) ] } (* unannotated *);
    {
      Assoc.doc = 4;
      text = [ ("zebra", 1.0); ("sky", 1.0) ];
      visual = [ ("gabor_0", 1.0); ("rgb_1", 1.0) ];
    };
  ]

(* {1 Assoc} *)

let test_of_caption () =
  let ev = Assoc.of_caption ~doc:7 ~caption:"The striped zebras" ~visual:[ ("g_0", 1.0) ] in
  Alcotest.(check int) "doc" 7 ev.Assoc.doc;
  Alcotest.(check (list (pair string (float 1e-9)))) "stemmed/stopped"
    [ ("stripe", 1.0); ("zebra", 1.0) ]
    ev.Assoc.text

let test_vocabularies () =
  Alcotest.(check (list string)) "text vocab"
    [ "zebra"; "stripe"; "sky"; "blue" ]
    (Assoc.text_vocabulary evidence);
  Alcotest.(check (list string)) "visual vocab" [ "gabor_0"; "rgb_1" ]
    (Assoc.visual_vocabulary evidence)

(* {1 Concepts} *)

let test_concepts_build () =
  let t = Concepts.build evidence in
  Alcotest.(check int) "two concepts" 2 (Concepts.concept_count t);
  Alcotest.(check (list string)) "names" [ "gabor_0"; "rgb_1" ] (Concepts.concepts t)

let test_concepts_associate () =
  let t = Concepts.build evidence in
  let ranked = Concepts.associate t (Querynet.flat [ "zebra" ]) in
  Alcotest.(check string) "zebra maps to texture cluster" "gabor_0" (fst (List.hd ranked));
  let ranked_sky = Concepts.associate t (Querynet.flat [ "sky" ]) in
  Alcotest.(check string) "sky maps to colour cluster" "rgb_1" (fst (List.hd ranked_sky))

let test_concepts_scores_ordered () =
  let t = Concepts.build evidence in
  let ranked = Concepts.associate t (Querynet.flat [ "zebra" ]) in
  let scores = List.map snd ranked in
  let rec desc = function a :: (b :: _ as r) -> a >= b && desc r | _ -> true in
  Alcotest.(check bool) "descending" true (desc scores)

let test_concepts_formulate () =
  let t = Concepts.build evidence in
  match Concepts.formulate t ~limit:1 (Querynet.flat [ "zebra" ]) with
  | Querynet.Wsum [ (w, Querynet.Term ("gabor_0", 1.0)) ] ->
    Alcotest.(check bool) "positive weight" true (w > 0.0)
  | other -> Alcotest.failf "unexpected query: %s" (Querynet.to_string other)

let test_concepts_unannotated_ignored () =
  (* doc 3 has no text: it must not bring gabor_0 an empty pseudo-doc boost *)
  let only_unannotated = [ List.nth evidence 3 ] in
  let t = Concepts.build only_unannotated in
  Alcotest.(check int) "no concepts from unannotated docs" 0 (Concepts.concept_count t)

(* {1 Emim} *)

let test_emim_scores () =
  let t = Emim.build evidence in
  Alcotest.(check int) "only dual-evidence docs" 4 (Emim.ndocs t);
  let zebra_gabor = Emim.score t ~term:"zebra" ~concept:"gabor_0" in
  let zebra_rgb = Emim.score t ~term:"zebra" ~concept:"rgb_1" in
  Alcotest.(check bool)
    (Printf.sprintf "zebra associates with gabor_0 (%.3f vs %.3f)" zebra_gabor zebra_rgb)
    true (zebra_gabor > zebra_rgb);
  Alcotest.(check (float 1e-9)) "unknown term scores 0" 0.0
    (Emim.score t ~term:"nope" ~concept:"gabor_0")

let test_emim_independent_is_low () =
  (* a concept present in every document carries no information about
     any term: its EMIM with everything is ~0 *)
  let evs =
    [
      { Assoc.doc = 0; text = [ ("zebra", 1.0) ]; visual = [ ("always", 1.0) ] };
      { Assoc.doc = 1; text = [ ("sky", 1.0) ]; visual = [ ("always", 1.0) ] };
      { Assoc.doc = 2; text = [ ("zebra", 1.0) ]; visual = [ ("always", 1.0) ] };
      { Assoc.doc = 3; text = [ ("sky", 1.0) ]; visual = [ ("always", 1.0) ] };
    ]
  in
  let t = Emim.build evs in
  Alcotest.(check (float 1e-9)) "independent pair" 0.0 (Emim.score t ~term:"zebra" ~concept:"always")

let test_emim_top_concepts () =
  let t = Emim.build evidence in
  match Emim.top_concepts t "sky" with
  | (c, s) :: _ ->
    Alcotest.(check string) "top concept" "rgb_1" c;
    Alcotest.(check bool) "positive" true (s > 0.0)
  | [] -> Alcotest.fail "no concepts"

(* {1 Adapt} *)

let test_adapt_reinforce () =
  let a = Adapt.create () in
  Alcotest.(check (float 1e-9)) "default weight" 1.0
    (Adapt.pair_weight a ~term:"zebra" ~concept:"gabor_0");
  Adapt.reinforce a ~terms:[ "zebra" ] ~concepts:[ "gabor_0" ] ~good:true;
  Alcotest.(check bool) "strengthened" true
    (Adapt.pair_weight a ~term:"zebra" ~concept:"gabor_0" > 1.0);
  Adapt.reinforce a ~terms:[ "zebra" ] ~concepts:[ "gabor_0" ] ~good:false;
  Alcotest.(check (float 1e-9)) "inverse updates cancel" 1.0
    (Adapt.pair_weight a ~term:"zebra" ~concept:"gabor_0");
  Alcotest.(check int) "pairs tracked" 1 (Adapt.pairs_adapted a)

let test_adapt_clamps () =
  let a = Adapt.create ~gain:2.0 ~floor:0.5 ~ceiling:2.5 () in
  for _ = 1 to 10 do
    Adapt.reinforce a ~terms:[ "t" ] ~concepts:[ "c" ] ~good:true
  done;
  Alcotest.(check (float 1e-9)) "ceiling" 2.5 (Adapt.pair_weight a ~term:"t" ~concept:"c");
  for _ = 1 to 10 do
    Adapt.reinforce a ~terms:[ "t" ] ~concepts:[ "c" ] ~good:false
  done;
  Alcotest.(check (float 1e-9)) "floor" 0.5 (Adapt.pair_weight a ~term:"t" ~concept:"c")

let test_adapt_adjust_reorders () =
  let a = Adapt.create () in
  let ranked = [ ("bad_concept", 0.6); ("good_concept", 0.55) ] in
  (* feedback says good_concept is right for this query *)
  for _ = 1 to 5 do
    Adapt.reinforce a ~terms:[ "q" ] ~concepts:[ "good_concept" ] ~good:true;
    Adapt.reinforce a ~terms:[ "q" ] ~concepts:[ "bad_concept" ] ~good:false
  done;
  match Adapt.adjust a ~terms:[ "q" ] ranked with
  | (first, _) :: _ -> Alcotest.(check string) "reordered" "good_concept" first
  | [] -> Alcotest.fail "empty"

let test_adapt_rejects_bad_gain () =
  Alcotest.check_raises "gain check" (Invalid_argument "Adapt.create: gain must exceed 1")
    (fun () -> ignore (Adapt.create ~gain:0.9 ()))

let () =
  Alcotest.run "mirror_thesaurus"
    [
      ( "assoc",
        [
          Alcotest.test_case "of_caption" `Quick test_of_caption;
          Alcotest.test_case "vocabularies" `Quick test_vocabularies;
        ] );
      ( "concepts",
        [
          Alcotest.test_case "build" `Quick test_concepts_build;
          Alcotest.test_case "associate by modality" `Quick test_concepts_associate;
          Alcotest.test_case "ranking order" `Quick test_concepts_scores_ordered;
          Alcotest.test_case "formulate wsum" `Quick test_concepts_formulate;
          Alcotest.test_case "unannotated ignored" `Quick test_concepts_unannotated_ignored;
        ] );
      ( "emim",
        [
          Alcotest.test_case "scores" `Quick test_emim_scores;
          Alcotest.test_case "independence scores zero" `Quick test_emim_independent_is_low;
          Alcotest.test_case "top concepts" `Quick test_emim_top_concepts;
        ] );
      ( "adapt",
        [
          Alcotest.test_case "reinforce" `Quick test_adapt_reinforce;
          Alcotest.test_case "clamping" `Quick test_adapt_clamps;
          Alcotest.test_case "adjust reorders" `Quick test_adapt_adjust_reorders;
          Alcotest.test_case "gain validation" `Quick test_adapt_rejects_bad_gain;
        ] );
    ]
