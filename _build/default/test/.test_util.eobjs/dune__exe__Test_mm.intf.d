test/test_mm.mli:
