test/test_util.ml: Alcotest Array Float Gen Int64 List Mirror_util Printf QCheck QCheck_alcotest String
