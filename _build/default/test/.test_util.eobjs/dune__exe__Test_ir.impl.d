test/test_ir.ml: Alcotest Gen List Mirror_bat Mirror_ir Option Printf QCheck QCheck_alcotest String
