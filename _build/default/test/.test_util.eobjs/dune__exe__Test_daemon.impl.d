test/test_daemon.ml: Alcotest Array List Mirror_daemon Mirror_mm Mirror_thesaurus Mirror_util Option Printf String
