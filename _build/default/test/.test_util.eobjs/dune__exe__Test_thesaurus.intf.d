test/test_thesaurus.mli:
