test/test_extensibility.mli:
