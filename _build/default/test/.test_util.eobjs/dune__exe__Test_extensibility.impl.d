test/test_extensibility.ml: Alcotest Hashtbl List Mirror_bat Mirror_core
