test/test_core.ml: Alcotest Array Filename Float Fun List Mirror_bat Mirror_core Mirror_daemon Mirror_ir Mirror_mm Mirror_util Option Printf QCheck QCheck_alcotest String Sys
