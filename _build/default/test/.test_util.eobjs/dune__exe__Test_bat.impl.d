test/test_bat.ml: Alcotest Filename Float Hashtbl List Mirror_bat Option Printf QCheck QCheck_alcotest String Sys
