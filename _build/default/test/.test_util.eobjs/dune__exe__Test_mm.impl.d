test/test_mm.ml: Alcotest Array Filename Float List Mirror_mm Mirror_util Printf QCheck QCheck_alcotest Sys
