test/test_thesaurus.ml: Alcotest List Mirror_ir Mirror_thesaurus Printf
