(* Tests for the distributed architecture (mirror_daemon). *)

module Prng = Mirror_util.Prng
module Synth = Mirror_mm.Synth
module Bus = Mirror_daemon.Bus
module Media = Mirror_daemon.Media
module Dictionary = Mirror_daemon.Dictionary
module Store = Mirror_daemon.Store
module Daemon = Mirror_daemon.Daemon
module Standard = Mirror_daemon.Standard
module Faults = Mirror_daemon.Faults
module Orchestrator = Mirror_daemon.Orchestrator

(* {1 Bus} *)

let test_bus_pubsub () =
  let b = Bus.create () in
  Bus.subscribe b ~topic:"t" ~name:"d1";
  Bus.subscribe b ~topic:"t" ~name:"d2";
  Bus.publish b { Bus.topic = "t"; subject = 5; payload = [ ("k", "v") ] };
  Alcotest.(check int) "fan out" 2 (Bus.pending b);
  (match Bus.fetch b ~name:"d1" with
  | Some m ->
    Alcotest.(check int) "subject" 5 m.Bus.subject;
    Alcotest.(check (option string)) "attr" (Some "v") (Bus.attr m "k")
  | None -> Alcotest.fail "expected message");
  Alcotest.(check bool) "d1 drained" true (Bus.fetch b ~name:"d1" = None);
  Alcotest.(check bool) "d2 still queued" true (Bus.fetch b ~name:"d2" <> None)

let test_bus_drop_counter () =
  let b = Bus.create () in
  Bus.publish b { Bus.topic = "nobody"; subject = 0; payload = [] };
  Alcotest.(check int) "dropped" 1 (Bus.dropped b);
  Alcotest.(check int) "published" 1 (Bus.published b)

let test_bus_fifo () =
  let b = Bus.create () in
  Bus.subscribe b ~topic:"t" ~name:"d";
  for i = 1 to 3 do
    Bus.publish b { Bus.topic = "t"; subject = i; payload = [] }
  done;
  let order = List.init 3 (fun _ -> (Option.get (Bus.fetch b ~name:"d")).Bus.subject) in
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] order

let test_bus_requeue () =
  let b = Bus.create () in
  Bus.subscribe b ~topic:"t" ~name:"d";
  Bus.publish b { Bus.topic = "t"; subject = 1; payload = [] };
  let m = Option.get (Bus.fetch b ~name:"d") in
  Bus.requeue b ~name:"d" m;
  Alcotest.(check int) "pending again" 1 (Bus.pending b);
  Alcotest.(check int) "requeue is not a publication" 1 (Bus.published b)

(* {1 Dictionary} *)

let test_dictionary () =
  let d = Dictionary.create () in
  Dictionary.register d ~name:"Lib" ~schema:"v1" ~owner:"app";
  Alcotest.(check (option string)) "initial" (Some "v1") (Dictionary.schema_of d "Lib");
  Dictionary.evolve d ~name:"Lib" ~schema:"v2" ~by:"daemon";
  Alcotest.(check (option string)) "evolved" (Some "v2") (Dictionary.schema_of d "Lib");
  Alcotest.(check (list (pair string string))) "history"
    [ ("v1", "app"); ("v2", "daemon") ]
    (Dictionary.history d "Lib");
  Alcotest.(check (list string)) "extents" [ "Lib" ] (Dictionary.extents d);
  Alcotest.check_raises "duplicate" (Invalid_argument "Dictionary.register: extent \"Lib\" already exists")
    (fun () -> Dictionary.register d ~name:"Lib" ~schema:"x" ~owner:"y")

(* {1 Store} *)

let test_store_visual_merge () =
  let s = Store.create () in
  Store.register_doc s ~doc:0 ~url:"u0";
  Store.add_visual_words s ~doc:0 [ ("a", 1.0); ("b", 2.0) ];
  Store.add_visual_words s ~doc:0 [ ("a", 0.5) ];
  Alcotest.(check (list (pair string (float 1e-9)))) "merged"
    [ ("a", 1.5); ("b", 2.0) ]
    (Store.visual_words s ~doc:0)

let test_store_evidence () =
  let s = Store.create () in
  Store.register_doc s ~doc:0 ~url:"u0";
  Store.register_doc s ~doc:1 ~url:"u1";
  Store.put_text s ~doc:0 [ ("zebra", 1.0) ];
  Store.add_visual_words s ~doc:0 [ ("g_0", 1.0) ];
  let evs = Store.evidence s in
  Alcotest.(check int) "all docs present" 2 (List.length evs);
  let ev0 = List.hd evs in
  Alcotest.(check bool) "doc0 has both" true
    (ev0.Mirror_thesaurus.Assoc.text <> [] && ev0.Mirror_thesaurus.Assoc.visual <> [])

(* {1 Media server} *)

let test_media_server () =
  let media = Media.create () in
  let img = Mirror_mm.Image.create ~width:4 ~height:4 in
  Media.put media ~url:"http://x/1" img;
  Media.put media ~url:"http://x/0" img;
  Alcotest.(check int) "count" 2 (Media.count media);
  Alcotest.(check (list string)) "urls sorted" [ "http://x/0"; "http://x/1" ] (Media.urls media);
  Alcotest.(check bool) "get" true (Media.get media "http://x/1" <> None);
  Alcotest.(check bool) "missing" true (Media.get media "http://x/2" = None);
  (* rebinding replaces *)
  Media.put media ~url:"http://x/1" img;
  Alcotest.(check int) "rebind keeps count" 2 (Media.count media)

let test_dictionary_unknown_evolve () =
  let d = Dictionary.create () in
  Alcotest.check_raises "unknown extent" Not_found (fun () ->
      Dictionary.evolve d ~name:"Nope" ~schema:"x" ~by:"y")

(* A daemon that re-publishes to its own topic would livelock; the
   orchestrator's round guard must stop it. *)
let test_orchestrator_livelock_guard () =
  let chatter =
    Daemon.make ~name:"chatter" ~topics:[ "noise" ] (fun _ m ->
        [ { Bus.topic = "noise"; subject = m.Bus.subject; payload = [] } ])
  in
  let orch = Orchestrator.create ~daemons:[ chatter ] () in
  Bus.publish (Orchestrator.ctx orch).Daemon.bus { Bus.topic = "noise"; subject = 0; payload = [] };
  let report = Orchestrator.run ~max_rounds:5 orch in
  Alcotest.(check int) "stopped at the guard" 5 report.Orchestrator.rounds

(* {1 Full pipeline (figure 1)} *)

let build_pipeline ?(n = 6) ?daemons () =
  let orch = Orchestrator.create ?daemons () in
  let g = Prng.create 42 in
  let scenes = Synth.corpus g ~n ~width:32 ~height:32 ~annotated_fraction:0.8 () in
  Array.iteri
    (fun i s ->
      let url = Printf.sprintf "http://img.example/%d.png" i in
      let annotation = Option.map (String.concat " ") s.Synth.caption in
      Orchestrator.ingest_image orch ~doc:i ~url ?annotation s.Synth.image)
    scenes;
  Orchestrator.complete_collection orch;
  (orch, scenes)

let test_pipeline_quiesces () =
  let orch, _ = build_pipeline () in
  let report = Orchestrator.run orch in
  Alcotest.(check bool) "finished" true (report.Orchestrator.rounds < 1000);
  Alcotest.(check int) "nothing dead-lettered" 0 (List.length report.Orchestrator.dead_letters);
  Alcotest.(check int) "bus drained" 0 (Bus.pending (Orchestrator.ctx orch).Daemon.bus)

let test_pipeline_products () =
  let orch, scenes = build_pipeline () in
  ignore (Orchestrator.run orch);
  let store = (Orchestrator.ctx orch).Daemon.store in
  (* every document segmented and feature-extracted in all six spaces *)
  Array.iteri
    (fun doc _ ->
      Alcotest.(check bool) (Printf.sprintf "segments doc %d" doc) true
        (Store.segments store ~doc <> None);
      List.iter
        (fun space ->
          Alcotest.(check bool)
            (Printf.sprintf "features %s doc %d" space doc)
            true
            (Store.features store ~doc ~space <> None))
        [ "rgb"; "hsv"; "gabor"; "glcm"; "mrf"; "fractal" ];
      Alcotest.(check bool) (Printf.sprintf "visual words doc %d" doc) true
        (Store.visual_words store ~doc <> []))
    scenes;
  (* all six spaces clustered *)
  Alcotest.(check (list string)) "clustered spaces"
    [ "fractal"; "gabor"; "glcm"; "hsv"; "mrf"; "rgb" ]
    (Store.clustered_spaces store);
  (* thesaurus built *)
  Alcotest.(check bool) "thesaurus" true (Store.thesaurus store <> None)

let test_pipeline_schema_evolution () =
  let orch, _ = build_pipeline () in
  ignore (Orchestrator.run orch);
  let dict = (Orchestrator.ctx orch).Daemon.dict in
  let history = Dictionary.history dict "ImageLibrary" in
  Alcotest.(check int) "two schema versions" 2 (List.length history);
  Alcotest.(check string) "evolved by clusterer" "autoclass" (snd (List.nth history 1))

let test_pipeline_annotations_indexed () =
  let orch, scenes = build_pipeline () in
  ignore (Orchestrator.run orch);
  let store = (Orchestrator.ctx orch).Daemon.store in
  Array.iteri
    (fun doc s ->
      match s.Synth.caption with
      | Some _ ->
        Alcotest.(check bool) (Printf.sprintf "text doc %d" doc) true
          (Store.text store ~doc <> None)
      | None ->
        Alcotest.(check bool) (Printf.sprintf "no text doc %d" doc) true
          (Store.text store ~doc = None))
    scenes

let test_pipeline_flaky_daemon_retries () =
  let g = Prng.create 7 in
  let daemons =
    List.map
      (fun (d : Daemon.t) ->
        if d.Daemon.name = "segmenter" then Faults.flaky g ~rate:0.4 d else d)
      (Standard.all ())
  in
  let orch, _ = build_pipeline ~daemons () in
  let report = Orchestrator.run ~max_retries:10 orch in
  let seg = List.find (fun s -> s.Orchestrator.name = "segmenter") report.Orchestrator.stats in
  Alcotest.(check bool) "some failures injected" true (seg.Orchestrator.failures > 0);
  Alcotest.(check int) "all images still segmented" 6 seg.Orchestrator.handled;
  Alcotest.(check int) "no dead letters with retries" 0
    (List.length report.Orchestrator.dead_letters)

let test_pipeline_broken_daemon_dead_letters () =
  let daemons =
    List.map
      (fun (d : Daemon.t) ->
        if d.Daemon.name = "annotation-indexer" then Faults.broken d else d)
      (Standard.all ())
  in
  let orch, scenes = build_pipeline ~daemons () in
  let report = Orchestrator.run ~max_retries:1 orch in
  let annotated =
    Array.to_list scenes |> List.filter (fun s -> s.Synth.caption <> None) |> List.length
  in
  Alcotest.(check int) "every annotation dead-lettered" annotated
    (List.length report.Orchestrator.dead_letters);
  List.iter
    (fun (name, _) -> Alcotest.(check string) "right daemon" "annotation-indexer" name)
    report.Orchestrator.dead_letters;
  (* the rest of the pipeline still completed *)
  let store = (Orchestrator.ctx orch).Daemon.store in
  Alcotest.(check bool) "clustering still ran" true (Store.clustered_spaces store <> [])

let test_missing_media_dead_letters () =
  let orch = Orchestrator.create () in
  let ctx = Orchestrator.ctx orch in
  (* announce a document whose footage the media server never received *)
  Store.register_doc ctx.Daemon.store ~doc:0 ~url:"http://gone";
  Bus.publish ctx.Daemon.bus
    { Bus.topic = "image.new"; subject = 0; payload = [ ("url", "http://gone") ] };
  let report = Orchestrator.run ~max_retries:1 orch in
  Alcotest.(check bool) "segmenter dead-letters the message" true
    (List.exists (fun (name, _) -> name = "segmenter") report.Orchestrator.dead_letters)

let test_query_formulation_round_trip () =
  let orch, _ = build_pipeline () in
  ignore (Orchestrator.run orch);
  (* interactive use: the client asks over the bus, the daemon answers *)
  Orchestrator.formulate orch "stripes";
  ignore (Orchestrator.run orch);
  match Orchestrator.formulated orch with
  | Some ((_ :: _) as concepts) ->
    List.iter
      (fun (c, w) ->
        Alcotest.(check bool) ("visual word: " ^ c) true
          (Mirror_mm.Vocabmap.parse_term c <> None);
        Alcotest.(check bool) "positive belief" true (w > 0.0))
      concepts
  | Some [] -> Alcotest.fail "no concepts returned"
  | None -> Alcotest.fail "no reply delivered"

let test_pipeline_stats_shape () =
  let orch, _ = build_pipeline () in
  let report = Orchestrator.run orch in
  Alcotest.(check int) "one stats row per daemon" 11 (List.length report.Orchestrator.stats);
  let seg = List.find (fun s -> s.Orchestrator.name = "segmenter") report.Orchestrator.stats in
  Alcotest.(check int) "segmenter saw all images" 6 seg.Orchestrator.handled;
  let cl = List.find (fun s -> s.Orchestrator.name = "autoclass") report.Orchestrator.stats in
  Alcotest.(check int) "clusterer ran once" 1 cl.Orchestrator.handled;
  (* one clustering.done per space + contrep.ready *)
  Alcotest.(check int) "clusterer produced 7 messages" 7 cl.Orchestrator.produced

let () =
  Alcotest.run "mirror_daemon"
    [
      ( "bus",
        [
          Alcotest.test_case "publish/subscribe" `Quick test_bus_pubsub;
          Alcotest.test_case "drop counter" `Quick test_bus_drop_counter;
          Alcotest.test_case "fifo order" `Quick test_bus_fifo;
          Alcotest.test_case "requeue" `Quick test_bus_requeue;
        ] );
      ("dictionary", [ Alcotest.test_case "register/evolve/history" `Quick test_dictionary ]);
      ( "store",
        [
          Alcotest.test_case "visual word merge" `Quick test_store_visual_merge;
          Alcotest.test_case "evidence" `Quick test_store_evidence;
        ] );
      ( "media",
        [
          Alcotest.test_case "put/get/urls" `Quick test_media_server;
          Alcotest.test_case "evolve unknown extent" `Quick test_dictionary_unknown_evolve;
          Alcotest.test_case "livelock guard" `Quick test_orchestrator_livelock_guard;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "quiesces" `Quick test_pipeline_quiesces;
          Alcotest.test_case "products complete" `Quick test_pipeline_products;
          Alcotest.test_case "schema evolution" `Quick test_pipeline_schema_evolution;
          Alcotest.test_case "annotations indexed" `Quick test_pipeline_annotations_indexed;
          Alcotest.test_case "flaky daemon retries" `Quick test_pipeline_flaky_daemon_retries;
          Alcotest.test_case "broken daemon dead-letters" `Quick test_pipeline_broken_daemon_dead_letters;
          Alcotest.test_case "stats shape" `Quick test_pipeline_stats_shape;
          Alcotest.test_case "missing media dead-letters" `Quick test_missing_media_dead_letters;
          Alcotest.test_case "interactive query formulation" `Quick test_query_formulation_round_trip;
        ] );
    ]
