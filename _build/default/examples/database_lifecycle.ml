(* The Mirror DBMS as a database: DDL, DML, views, persistence.

   "The Mirror DBMS provides the basic functionality ... just like
   traditional database systems provide the basic functionality to
   build administrative applications."  This walkthrough exercises that
   basic functionality end to end: define a content-bearing schema,
   insert and delete through statements, query through views, save the
   database to disk, load it back, and verify the statistics
   (document frequencies, inverted index) survived.

   Run with:  dune exec examples/database_lifecycle.exe *)

module Mirror = Mirror_core.Mirror
module Persist = Mirror_core.Persist
module Storage = Mirror_core.Storage
module Value = Mirror_core.Value

let ok = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("error: " ^ e);
    exit 1

let show_outcomes outcomes =
  List.iter
    (fun o ->
      match o with
      | Mirror.Defined n -> Printf.printf "  defined %s\n" n
      | Mirror.Bound n -> Printf.printf "  bound %s\n" n
      | Mirror.Inserted n -> Printf.printf "  inserted into %s\n" n
      | Mirror.Deleted (n, k) -> Printf.printf "  deleted %d row(s) from %s\n" k n
      | Mirror.Evaluated v -> Printf.printf "  = %s\n" (Value.to_string v))
    outcomes

let () =
  let m = Mirror.create () in

  print_endline "-- a session of statements --";
  show_outcomes
    (ok
       (Mirror.exec_program m
          "define Notes as SET< TUPLE< Atomic<str>: id, Atomic<int>: year, CONTREP<Text>: \
           body > >;"));

  (* DML goes through statements too; CONTREP fields are built by a
     host-side load here because insert rows must be closed
     expressions — we use the library API for those *)
  ignore
    (ok
       (Mirror.load m ~name:"Notes"
          [
            Value.Tup
              [
                ("id", Value.str "n1");
                ("year", Value.int 1998);
                ("body", Value.contrep (Mirror_ir.Tokenize.tf_bag "flattening the object algebra"));
              ];
            Value.Tup
              [
                ("id", Value.str "n2");
                ("year", Value.int 1999);
                ("body", Value.contrep (Mirror_ir.Tokenize.tf_bag "the mirror architecture demo"));
              ];
            Value.Tup
              [
                ("id", Value.str "n3");
                ("year", Value.int 2001);
                ("body", Value.contrep (Mirror_ir.Tokenize.tf_bag "obsolete draft, ignore"));
              ];
          ]));

  show_outcomes
    (ok
       (Mirror.exec_program m
          "let nineties = select[THIS.year < 2000](Notes);\n\
           count(nineties);\n\
           delete from Notes where THIS.year > 2000;\n\
           count(Notes);\n\
           map[tuple(id: THIS.id, score: sum(getBL(THIS.body, {'mirror'}, stats)))](Notes);"));

  (* persistence: two human-readable files *)
  let dir = Filename.temp_file "mirror" ".db" in
  Sys.remove dir;
  ok (Persist.save (Mirror.storage m) ~dir);
  Printf.printf "\n-- saved to %s --\n" dir;
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      let ic = open_in_bin path in
      let size = in_channel_length ic in
      close_in ic;
      Printf.printf "  %s (%d bytes)\n" f size)
    (Array.to_list (Sys.readdir dir));

  let m2 = Mirror.of_storage (ok (Persist.load ~dir)) in
  print_endline "\n-- reloaded; statistics and index survive --";
  show_outcomes
    (ok
       (Mirror.exec_program m2
          "count(Notes);\n\
           map[tuple(id: THIS.id, score: sum(getBL(THIS.body, {'mirror'}, stats)))](Notes);\n\
           count(flatten(map[terms(THIS.body)](Notes)));"));

  (* clean up *)
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir
