examples/traditional_library.mli:
