examples/quickstart.ml: List Mirror_core Printf String
