examples/image_retrieval.ml: Array List Mirror_core Mirror_daemon Mirror_mm Mirror_util Printf String
