examples/custom_structure.ml: Array Hashtbl List Mirror_bat Mirror_core Mirror_mm Mirror_util Printf String
