examples/quickstart.mli:
