examples/custom_structure.mli:
