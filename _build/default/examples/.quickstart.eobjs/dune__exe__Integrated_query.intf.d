examples/integrated_query.mli:
