examples/image_retrieval.mli:
