examples/integrated_query.ml: List Mirror_bat Mirror_core Mirror_ir Printf
