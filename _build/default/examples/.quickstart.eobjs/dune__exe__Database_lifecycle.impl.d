examples/database_lifecycle.ml: Array Filename List Mirror_core Mirror_ir Printf Sys
