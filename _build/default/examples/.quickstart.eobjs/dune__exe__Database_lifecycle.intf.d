examples/database_lifecycle.mli:
