examples/traditional_library.ml: List Mirror_bat Mirror_core Mirror_ir Printf String
