(* Quickstart: define a schema, load data, run Moa queries.

   Run with:  dune exec examples/quickstart.exe *)

module Mirror = Mirror_core.Mirror
module Value = Mirror_core.Value

let ok = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("error: " ^ e);
    exit 1

let show title v = Printf.printf "%-46s %s\n" title (Value.to_string v)

let () =
  let m = Mirror.create () in

  (* 1. Define an extent with the paper's DDL syntax. *)
  ignore
    (ok
       (Mirror.exec_program m
          "define Albums as SET< TUPLE< Atomic<str>: title, Atomic<int>: year, \
           SET< Atomic<str> >: genres > >;"));

  (* 2. Load some rows (programmatically; values are ordinary OCaml). *)
  let album title year genres =
    Value.Tup
      [
        ("title", Value.str title);
        ("year", Value.int year);
        ("genres", Value.VSet (List.map Value.str genres));
      ]
  in
  ignore
    (ok
       (Mirror.load m ~name:"Albums"
          [
            album "Blue Train" 1957 [ "jazz"; "hard bop" ];
            album "Kind of Blue" 1959 [ "jazz"; "modal" ];
            album "In Rainbows" 2007 [ "rock"; "electronic" ];
            album "Vespertine" 2001 [ "electronic" ];
          ]));

  (* 3. Query in the Moa algebra: map / select / aggregates compose. *)
  let q src = ok (Mirror.run_query m src) in
  show "all titles:" (q "map[THIS.title](Albums)");
  show "released before 1960:" (q "map[THIS.title](select[THIS.year < 1960](Albums))");
  show "average year:" (q "avg(map[THIS.year](Albums))");
  show "albums per genre count:" (q "map[tuple(t: THIS.title, n: count(THIS.genres))](Albums)");
  show "jazz albums:" (q "map[THIS.title](select[in('jazz', THIS.genres)](Albums))");
  show "three newest (LIST extension):"
    (q "take(tolist_desc(map[tuple(t: THIS.title, y: THIS.year)](Albums), 'y'), 3)");

  (* 4. The same query through the two evaluators agrees — the flattened
     set-at-a-time plan is the one actually executed. *)
  let expr = ok (Mirror_core.Parser.parse_expr "sum(map[THIS.year](Albums))") in
  let naive = Mirror_core.Naive.eval (Mirror.storage m) expr in
  let flat = ok (Mirror_core.Eval.query_value (Mirror.storage m) expr) in
  Printf.printf "naive = %s, flattened = %s, agree = %b\n" (Value.to_string naive)
    (Value.to_string flat) (Value.equal naive flat);

  (* 5. Peek at the physical plan (MIL over BATs). *)
  print_endline "\nphysical plan of `select[THIS.year < 1960](Albums)` (first BATs):";
  let plan =
    ok (Mirror_core.Eval.explain (Mirror.storage m)
          (ok (Mirror_core.Parser.parse_expr "select[THIS.year < 1960](Albums)")))
  in
  String.split_on_char '\n' plan
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter print_endline
