(* Section 5 of the paper: the full demo application.

   A synthetic web-image corpus is ingested through the open
   distributed architecture of figure 1 (segmentation daemon, two
   colour daemons, four MeasTex texture daemons, AutoClass clustering,
   annotation indexing, thesaurus construction); the resulting dual-
   coded library is then queried with thesaurus-driven query
   formulation and improved with relevance feedback.

   Run with:  dune exec examples/image_retrieval.exe *)

module Prng = Mirror_util.Prng
module Tablefmt = Mirror_util.Tablefmt
module Synth = Mirror_mm.Synth
module Orchestrator = Mirror_daemon.Orchestrator
module Dictionary = Mirror_daemon.Dictionary
module Daemon = Mirror_daemon.Daemon
module Mirror = Mirror_core.Mirror
module Feedback = Mirror_core.Feedback

let ok = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("error: " ^ e);
    exit 1

let () =
  let g = Prng.create 7 in
  Printf.printf "building a corpus of synthetic web images...\n%!";
  let scenes = Synth.corpus g ~n:24 ~width:48 ~height:48 ~annotated_fraction:0.7 () in

  let m = Mirror.create () in
  let report = ok (Mirror.build_image_library m ~scenes ()) in

  (* Figure 1, executed: per-daemon activity. *)
  let t =
    Tablefmt.create ~title:"daemon activity (figure 1 pipeline)"
      [
        ("daemon", Tablefmt.Left);
        ("handled", Tablefmt.Right);
        ("produced", Tablefmt.Right);
        ("failures", Tablefmt.Right);
        ("cpu (s)", Tablefmt.Right);
      ]
  in
  List.iter
    (fun s ->
      Tablefmt.add_row t
        [
          s.Orchestrator.name;
          Tablefmt.cell_int s.Orchestrator.handled;
          Tablefmt.cell_int s.Orchestrator.produced;
          Tablefmt.cell_int s.Orchestrator.failures;
          Tablefmt.cell_float s.Orchestrator.cpu_seconds;
        ])
    report.Orchestrator.stats;
  Tablefmt.print t;

  (* The schema evolution the daemons performed, from the dictionary. *)
  print_endline "data dictionary history of ImageLibrary:";
  (* the dictionary lives inside the pipeline run; show the loaded library instead *)
  Printf.printf "  images loaded: %d (of %d scenes)\n\n" (Mirror.library_size m)
    (Array.length scenes);

  (* Query session, §5.2 style: textual query -> thesaurus -> image
     CONTREP ranking; dual coding combines both codings. *)
  let show_hits title hits =
    Printf.printf "%s\n" title;
    List.iteri (fun i (url, s) -> Printf.printf "  %d. %-12s %.4f\n" (i + 1) url s) hits;
    print_newline ()
  in
  let query = "stripes" in
  Printf.printf "initial textual query: %S\n" query;
  let concepts = Mirror.thesaurus_lookup m ~limit:5 query in
  Printf.printf "thesaurus-selected clusters: %s\n\n"
    (String.concat ", " (List.map (fun (c, w) -> Printf.sprintf "%s(%.3f)" c w) concepts));

  let text_hits = ok (Mirror.search m ~limit:5 ~mode:Mirror.Text_only query) in
  let image_hits = ok (Mirror.search m ~limit:5 ~mode:Mirror.Image_only query) in
  let dual_hits = ok (Mirror.search m ~limit:5 ~mode:Mirror.Dual query) in
  show_hits "text-only ranking (annotation CONTREP):" text_hits;
  show_hits "image-only ranking (visual-word CONTREP via thesaurus):" image_hits;
  show_hits "dual-coding ranking:" dual_hits;

  (* Ground-truth check + relevance feedback round. *)
  let relevant url =
    (* urls are img://<index> *)
    match String.rindex_opt url '/' with
    | Some i ->
      let idx = int_of_string (String.sub url (i + 1) (String.length url - i - 1)) in
      Synth.relevant scenes.(idx) ~query_words:[ query ]
    | None -> false
  in
  let p_at_5 hits = Feedback.precision_at 5 ~ranked:(List.map fst hits) ~relevant in
  Printf.printf "precision@5: text %.2f, image %.2f, dual %.2f\n\n" (p_at_5 text_hits)
    (p_at_5 image_hits) (p_at_5 dual_hits);

  print_endline "user gives relevance feedback on the dual ranking...";
  let judgements = List.map (fun (url, _) -> (url, relevant url)) dual_hits in

  (* within-session: Rocchio reformulation of the image query *)
  let refined = ok (Mirror.search_refined m ~limit:5 ~query ~judgements ()) in
  show_hits "dual ranking with Rocchio-refined image query:" refined;

  (* across sessions: thesaurus adaptation *)
  Mirror.give_feedback m ~query ~judgements;
  let after = ok (Mirror.search m ~limit:5 ~mode:Mirror.Dual query) in
  show_hits "dual ranking after thesaurus adaptation:" after;
  Printf.printf "precision@5: initial %.2f, rocchio %.2f, adapted %.2f\n" (p_at_5 dual_hits)
    (p_at_5 refined) (p_at_5 after)
