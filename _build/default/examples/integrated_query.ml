(* "Because these query expressions can be combined with 'normal'
   relational operators (such as select or join), the resulting system
   is an efficient integration of information and data retrieval."

   This example exercises that claim ([dVW99]): one Moa query mixes
   structured predicates (year ranges, joins against a rights table)
   with content-based ranking over CONTREP — no second system, no
   post-filtering glue.

   Run with:  dune exec examples/integrated_query.exe *)

module Mirror = Mirror_core.Mirror
module Value = Mirror_core.Value
module Expr = Mirror_core.Expr
module Tokenize = Mirror_ir.Tokenize
module Atom = Mirror_bat.Atom

let ok = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("error: " ^ e);
    exit 1

let () =
  let m = Mirror.create () in
  ignore
    (ok
       (Mirror.exec_program m
          "define Footage as SET< TUPLE< Atomic<URL>: source, Atomic<int>: year, \
           Atomic<str>: owner, CONTREP<Text>: caption > >;\n\
           define Licenses as SET< TUPLE< Atomic<str>: owner, Atomic<bool>: open_license > >;"));

  let footage url year owner caption =
    Value.Tup
      [
        ("source", Value.str url);
        ("year", Value.int year);
        ("owner", Value.str owner);
        ("caption", Value.contrep (Tokenize.tf_bag caption));
      ]
  in
  ignore
    (ok
       (Mirror.load m ~name:"Footage"
          [
            footage "img://a" 1994 "archive-x" "striped zebra on the savanna";
            footage "img://b" 1999 "agency-y" "zebra herd crossing a river";
            footage "img://c" 1999 "archive-x" "city skyline at night";
            footage "img://d" 2003 "agency-y" "stripes of a tiger in grass";
            footage "img://e" 1997 "press-z" "zebra crossing road markings";
          ]));
  ignore
    (ok
       (Mirror.load m ~name:"Licenses"
          [
            Value.Tup [ ("owner", Value.str "archive-x"); ("open_license", Value.bool true) ];
            Value.Tup [ ("owner", Value.str "agency-y"); ("open_license", Value.bool false) ];
            Value.Tup [ ("owner", Value.str "press-z"); ("open_license", Value.bool true) ];
          ]));

  let bindings = [ ("query", Expr.lit_str_set (Tokenize.terms "striped zebras")) ] in

  (* Structure + content in a single algebra expression:
     - relational selection on year,
     - join against the license table,
     - IR belief both as a ranking score and as a selection predicate. *)
  let src =
    "tolist_desc(\n\
    \  map[tuple(source: THIS.left.source,\n\
    \            owner: THIS.left.owner,\n\
    \            score: sum(getBL(THIS.left.caption, query, stats)))](\n\
    \    select[THIS.right.open_license and THIS.left.year < 2000](\n\
    \      join[THIS1.owner = THIS2.owner](Footage, Licenses))),\n\
    \  'score')"
  in
  print_endline "query: open-licensed pre-2000 footage, ranked by belief in 'striped zebras'";
  (match ok (Mirror.run_query m ~bindings src) with
  | Value.Xv { ext = "LIST"; items; _ } ->
    List.iteri
      (fun i item ->
        Printf.printf "  %d. %-9s %-10s %.4f\n" (i + 1)
          (Atom.as_string (Value.as_atom (Value.field_exn item "source")))
          (Atom.as_string (Value.as_atom (Value.field_exn item "owner")))
          (Atom.as_float (Value.as_atom (Value.field_exn item "score"))))
      items
  | v -> print_endline (Value.to_string v));

  (* Belief thresholds compose with any other predicate. *)
  let v =
    ok
      (Mirror.run_query m ~bindings
         "count(select[sum(getBL(THIS.caption, query, stats)) > 0.9 and THIS.year < \
          2000](Footage))")
  in
  Printf.printf "\npre-2000 items with summed belief > 0.9: %s\n" (Value.to_string v);

  (* Nesting: group the matching footage per owner (NF2 restructuring). *)
  let v =
    ok
      (Mirror.run_query m ~bindings
         "nest[owner, items](map[tuple(owner: THIS.owner, source: THIS.source)](Footage))")
  in
  Printf.printf "\nfootage grouped per owner:\n%s\n" (Value.to_string v)
