(* Section 3 of the paper: a traditional digital library of manually
   annotated images, indexed with the inference network retrieval
   model, and ranked with the paper's literal query:

     map[sum(THIS)](
       map[getBL(THIS.annotation, query, stats)]( TraditionalImgLib ));

   Run with:  dune exec examples/traditional_library.exe *)

module Mirror = Mirror_core.Mirror
module Value = Mirror_core.Value
module Expr = Mirror_core.Expr
module Tokenize = Mirror_ir.Tokenize

let ok = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("error: " ^ e);
    exit 1

(* A small manually-annotated image collection (URL + caption). *)
let collection =
  [
    ("img://zebra-1", "a striped zebra grazing in yellow grass");
    ("img://zebra-2", "two zebras with bold stripes near water");
    ("img://sky-1", "blue sky with smooth clouds over the sea");
    ("img://tile-1", "a checkered tile floor in a red kitchen");
    ("img://dots-1", "a spotted dress with purple dots");
    ("img://sea-1", "waves rolling onto the beach under a grey sky");
  ]

let () =
  let m = Mirror.create () in

  (* The paper's schema, verbatim. *)
  ignore
    (ok
       (Mirror.exec_program m
          "define TraditionalImgLib as SET< TUPLE< Atomic<URL>: source, CONTREP<Text>: \
           annotation > >;"));

  (* Index the annotations into the CONTREP structure (tokenised,
     stopped, stemmed — the statistics space is built on load). *)
  let rows =
    List.map
      (fun (url, caption) ->
        Value.Tup
          [
            ("source", Value.str url);
            ("annotation", Value.contrep (Tokenize.tf_bag caption));
          ])
      collection
  in
  ignore (ok (Mirror.load m ~name:"TraditionalImgLib" rows));

  let run_paper_query text =
    let terms = Tokenize.terms text in
    let bindings = [ ("query", Expr.lit_str_set terms) ] in
    (* The paper's query text, literally. *)
    let scores =
      ok
        (Mirror.run_query m ~bindings
           "map[sum(THIS)]( map[getBL(THIS.annotation, query, stats)]( TraditionalImgLib ));")
    in
    (* Pair the scores back with sources, ranked, still inside Moa. *)
    let ranked =
      ok
        (Mirror.run_query m ~bindings
           "tolist_desc(map[tuple(source: THIS.source, score: sum(getBL(THIS.annotation, \
            query, stats)))](TraditionalImgLib), 'score')")
    in
    Printf.printf "query: %S  (terms after analysis: %s)\n" text (String.concat ", " terms);
    Printf.printf "  raw belief multiset: %s\n" (Value.to_string scores);
    (match ranked with
    | Value.Xv { ext = "LIST"; items; _ } ->
      List.iteri
        (fun i item ->
          let url = Mirror_bat.Atom.as_string (Value.as_atom (Value.field_exn item "source")) in
          let s = Mirror_bat.Atom.as_float (Value.as_atom (Value.field_exn item "score")) in
          Printf.printf "  %d. %-16s %.4f\n" (i + 1) url s)
        items
    | _ -> ());
    print_newline ()
  in

  run_paper_query "striped zebras";
  run_paper_query "blue sky";
  run_paper_query "waves on the beach";

  (* Content + structure in one query: IR predicates compose with
     ordinary relational selection ([dVW99] integration). *)
  let bindings = [ ("query", Expr.lit_str_set (Tokenize.terms "zebra stripes")) ] in
  let v =
    ok
      (Mirror.run_query m ~bindings
         "map[THIS.source](select[sum(getBL(THIS.annotation, query, stats)) > 1.0]\
          (TraditionalImgLib))")
  in
  Printf.printf "sources with summed belief > 1.0 for 'zebra stripes': %s\n" (Value.to_string v)
