(* bench-smoke validator: check that BENCH_core.json parses and carries
   a well-formed entry for every core experiment (E1–E5).  Run by
   `dune build @bench-smoke`; exits non-zero on any problem so the
   alias fails loudly. *)

module Json = Mirror_util.Jsonx

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("BENCH_core.json: " ^ s); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_core.json" in
  let src = try read_file path with Sys_error e -> die "cannot read: %s" e in
  let doc = match Json.parse src with Ok v -> v | Error e -> die "parse error: %s" e in
  (match Json.member "schema" doc with
  | Some (Json.Str "mirror-bench-core/v1") -> ()
  | Some (Json.Str other) -> die "unexpected schema %S" other
  | _ -> die "missing \"schema\" field");
  (match Json.member "mode" doc with
  | Some (Json.Str ("quick" | "full")) -> ()
  | _ -> die "missing or bad \"mode\" field");
  let entries =
    match Option.bind (Json.member "experiments" doc) Json.to_list with
    | Some es -> es
    | None -> die "missing \"experiments\" array"
  in
  let entry_id e = Option.bind (Json.member "id" e) Json.to_str in
  let find id = List.find_opt (fun e -> entry_id e = Some id) entries in
  List.iter
    (fun id ->
      match find id with
      | None -> die "no entry for experiment %s" id
      | Some e ->
        (* every core entry carries at least one non-empty row list *)
        let row_fields = [ "rows"; "daemons"; "modes" ] in
        let has_rows =
          List.exists
            (fun f ->
              match Option.bind (Json.member f e) Json.to_list with
              | Some (_ :: _) -> true
              | _ -> false)
            row_fields
        in
        if not has_rows then die "entry %s has no rows" id)
    [ "E1"; "E2"; "E3"; "E4"; "E5" ];
  (* E4 must carry the tracing ablation used by the acceptance check *)
  (match find "E4" with
  | Some e4 ->
    (match Json.member "trace_ablation" e4 with
    | Some (Json.Obj _ as ab) ->
      if Option.bind (Json.member "trace_off_ms" ab) Json.to_float = None then
        die "E4 trace_ablation lacks trace_off_ms"
    | _ -> die "E4 entry lacks trace_ablation")
  | None -> ());
  (* the RECOVERY entry must show a real replay: records redone,
     positive throughput, and the post-recovery certification pass *)
  (match find "RECOVERY" with
  | None -> die "no entry for the crash-recovery experiment (RECOVERY)"
  | Some e ->
    (match Option.bind (Json.member "records_replayed" e) Json.to_int with
    | Some n when n > 0 -> ()
    | Some _ -> die "RECOVERY replayed zero records"
    | None -> die "RECOVERY entry lacks records_replayed");
    (match Option.bind (Json.member "recovery_ms" e) Json.to_float with
    | Some msf when msf >= 0.0 -> ()
    | _ -> die "RECOVERY entry lacks recovery_ms");
    (match Option.bind (Json.member "replay_records_per_s" e) Json.to_float with
    | Some r when r > 0.0 -> ()
    | _ -> die "RECOVERY entry lacks replay_records_per_s");
    (match Json.member "certified" e with
    | Some (Json.Bool true) -> ()
    | _ -> die "RECOVERY run was not certified"));
  (* the CHAOS entry must show the fault schedules actually converged:
     every schedule healed back to the failure-free store, and the
     recovery machinery (dead-letter queue + redelivery) saw traffic *)
  (match find "CHAOS" with
  | None -> die "no entry for the chaos suite (CHAOS)"
  | Some c ->
    let int_field name =
      match Option.bind (Json.member name c) Json.to_int with
      | Some n -> n
      | None -> die "CHAOS entry lacks %s" name
    in
    let schedules = int_field "schedules" in
    if schedules <= 0 then die "CHAOS ran zero schedules";
    if int_field "converged" <> schedules then
      die "CHAOS: only %d/%d schedules converged" (int_field "converged") schedules;
    ignore (int_field "dead_letters");
    if int_field "redelivered" <= 0 then
      die "CHAOS redelivered nothing (fault schedules exercised no recovery)";
    List.iter
      (fun f ->
        match Option.bind (Json.member f c) Json.to_float with
        | Some v when v >= 0.0 -> ()
        | _ -> die "CHAOS entry lacks %s" f)
      [ "rounds_p50"; "clean_ms"; "degraded_ms" ]);
  (* the VET entry must prove translation validation and the effect
     analysis actually ran — and that the corpus is hazard-free *)
  (match find "VET" with
  | None -> die "no entry for the workload vetting pass (VET)"
  | Some v ->
    let counter name =
      Option.bind (Json.member "metrics" v) (fun m ->
          Option.bind (Json.member "counters" m) (Json.member name))
    in
    (match counter "moacheck.envelope_checks" with
    | Some (Json.Int n) when n > 0 -> ()
    | Some (Json.Int _) -> die "VET ran zero envelope checks"
    | _ -> die "VET entry lacks the moacheck.envelope_checks counter");
    (match counter "effcheck.plans" with
    | Some (Json.Int n) when n > 0 -> ()
    | Some (Json.Int _) -> die "VET analyzed zero plans with effcheck"
    | _ -> die "VET entry lacks the effcheck.plans counter");
    (match counter "effcheck.partitions" with
    | Some (Json.Int n) when n > 0 -> ()
    | Some (Json.Int _) -> die "VET found zero safe partitions"
    | _ -> die "VET entry lacks the effcheck.partitions counter");
    (match counter "effcheck.hazards" with
    | Some (Json.Int 0) -> ()
    | Some (Json.Int n) -> die "VET found %d effcheck hazard(s) over the corpus" n
    | _ -> die "VET entry lacks the effcheck.hazards counter");
    (match counter "boundcheck.plans" with
    | Some (Json.Int n) when n > 0 -> ()
    | Some (Json.Int _) -> die "VET analyzed zero plans with boundcheck"
    | _ -> die "VET entry lacks the boundcheck.plans counter"));
  (* the BOUND entry must carry one row per workload query with a
     finite, >= 1 estimation error ratio — the envelope may be loose
     but never degenerate (soundness itself is asserted inside the
     harness, which aborts on any violation before recording) *)
  (match find "BOUND" with
  | None -> die "no entry for the resource-bound experiment (BOUND)"
  | Some b ->
    let rows =
      match Option.bind (Json.member "rows" b) Json.to_list with
      | Some (_ :: _ as rs) -> rs
      | _ -> die "BOUND entry has no rows"
    in
    List.iter
      (fun row ->
        match Option.bind (Json.member "error_ratio" row) Json.to_float with
        | Some r when Float.is_finite r && r >= 1.0 -> ()
        | Some r -> die "BOUND row has a degenerate error ratio %f" r
        | None -> die "BOUND row lacks error_ratio")
      rows;
    List.iter
      (fun f ->
        match Option.bind (Json.member f b) Json.to_float with
        | Some r when Float.is_finite r && r >= 1.0 -> ()
        | _ -> die "BOUND entry lacks a finite %s" f)
      [ "mean_error_ratio"; "max_error_ratio" ]);
  (* the PARALLEL entry must prove the morsel kernel's determinism
     contract (parallel digests bitwise equal to sequential at every
     domain count); actual speedup is only demanded where it is
     physically possible — the entry records the host's core count *)
  (match find "PARALLEL" with
  | None -> die "no entry for the parallel-kernel experiment (PARALLEL)"
  | Some p ->
    (match Json.member "digests_equal" p with
    | Some (Json.Bool true) -> ()
    | Some (Json.Bool false) -> die "PARALLEL digests differ from sequential"
    | _ -> die "PARALLEL entry lacks digests_equal");
    let cores =
      match Option.bind (Json.member "cores" p) Json.to_int with
      | Some n when n > 0 -> n
      | _ -> die "PARALLEL entry lacks cores"
    in
    (match Option.bind (Json.member "operators" p) Json.to_list with
    | Some (_ :: _) -> ()
    | _ -> die "PARALLEL entry has no operator rows");
    match Option.bind (Json.member "speedup_4" p) Json.to_float with
    | Some s ->
      if cores >= 4 && s < 1.0 then
        die "PARALLEL speedup at 4 domains is %.2fx on a %d-core host" s cores
    | None -> die "PARALLEL entry lacks speedup_4");
  (* the SERVE entry must prove the serving tier's two contracts: the
     concurrent sessions' result streams were bitwise identical
     (snapshot isolation + version-keyed cache never change an
     answer), and the result cache actually served hits *)
  (match find "SERVE" with
  | None -> die "no entry for the serving-tier experiment (SERVE)"
  | Some s ->
    (match Json.member "digests_equal" s with
    | Some (Json.Bool true) -> ()
    | Some (Json.Bool false) -> die "SERVE session result streams diverged"
    | _ -> die "SERVE entry lacks digests_equal");
    (match Option.bind (Json.member "cache_hit_rate" s) Json.to_float with
    | Some r when r > 0.0 && r <= 1.0 -> ()
    | Some r -> die "SERVE cache hit rate %f is not in (0, 1]" r
    | None -> die "SERVE entry lacks cache_hit_rate");
    (match Option.bind (Json.member "sessions" s) Json.to_int with
    | Some n when n > 1 -> ()
    | Some _ -> die "SERVE ran with fewer than two sessions"
    | None -> die "SERVE entry lacks sessions");
    (match Option.bind (Json.member "requests" s) Json.to_int with
    | Some n when n > 0 -> ()
    | _ -> die "SERVE entry lacks a positive request count");
    (match Option.bind (Json.member "throughput_rps" s) Json.to_float with
    | Some r when r > 0.0 -> ()
    | _ -> die "SERVE entry lacks a positive throughput_rps");
    List.iter
      (fun f ->
        match Option.bind (Json.member f s) Json.to_float with
        | Some v when v >= 0.0 -> ()
        | _ -> die "SERVE entry lacks %s" f)
      [ "p50_ms"; "p95_ms" ];
    (match Option.bind (Json.member "refusals" s) Json.to_int with
    | Some n when n >= 0 -> ()
    | _ -> die "SERVE entry lacks refusals"));
  Printf.printf "BENCH_core.json ok: %d experiment entries (%s)\n" (List.length entries)
    (String.concat ", " (List.filter_map entry_id entries))
