(* The Mirror experiment harness.

   The VLDB'99 paper is a demo paper: its only figure is the
   architecture (figure 1) and it prints two example queries; it
   reports no quantitative tables.  This harness reproduces every
   artefact it does contain and turns each of its efficiency claims
   into a measured experiment — see EXPERIMENTS.md for the index.

     F1  figure 1 as an executable pipeline (per-daemon activity)
     Q1  the §3 ranking query, latency vs collection size
     Q2  the §5.2 dual-coded retrieval session
     E1  flattened set-at-a-time vs object-at-a-time evaluation
     E2  dedicated physical getBL vs belief composed from generic ops
     E3  integrated IR+DB query vs two-system post-filtering
     E4  algebraic optimisation and CSE ablations
     E5  component micro-benchmarks (bechamel)
     E6  retrieval quality: dual coding and relevance feedback
     RECOVERY  durable-store WAL replay throughput and recovery time

   Besides the printed tables, every experiment appends an entry to
   BENCH_core.json (schema documented in EXPERIMENTS.md) so later PRs
   can diff sizes, median latencies and op-level metric snapshots
   against this baseline.

   Run with:  dune exec bench/main.exe            (full suite)
              dune exec bench/main.exe -- quick   (smaller sizes) *)

module Prng = Mirror_util.Prng
module Tablefmt = Mirror_util.Tablefmt
module Json = Mirror_util.Jsonx
module Metrics = Mirror_util.Metrics
module Trace = Mirror_util.Trace
module Atom = Mirror_bat.Atom
module Bat = Mirror_bat.Bat
module Column = Mirror_bat.Column
module Parkernel = Mirror_bat.Parkernel
module Synth = Mirror_mm.Synth
module Segment = Mirror_mm.Segment
module Kmeans = Mirror_mm.Kmeans
module Autoclass = Mirror_mm.Autoclass
module Belief = Mirror_ir.Belief
module Porter = Mirror_ir.Porter
module Querynet = Mirror_ir.Querynet
module Space = Mirror_ir.Space
module Orchestrator = Mirror_daemon.Orchestrator
module Mirror = Mirror_core.Mirror
module Value = Mirror_core.Value
module Expr = Mirror_core.Expr
module Parser = Mirror_core.Parser
module Storage = Mirror_core.Storage
module Naive = Mirror_core.Naive
module Eval = Mirror_core.Eval
module Optimize = Mirror_core.Optimize
module Feedback = Mirror_core.Feedback

let quick = Array.exists (fun a -> a = "quick") Sys.argv

let ok = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("bench error: " ^ e);
    exit 1

let section title = Printf.printf "\n==== %s ====\n\n" title

(* Adaptive timing (CPU seconds; everything here is single threaded and
   compute bound).  Each run is timed individually and the *median* is
   reported — robust against GC pauses and scheduler noise, and the
   figure BENCH_core.json records for later PRs to diff. *)
let seconds_per_run f =
  ignore (f ());
  (* warm-up + single-shot estimate *)
  let t0 = Sys.time () in
  ignore (f ());
  let est = Float.max (Sys.time () -. t0) 1e-6 in
  let reps = max 5 (int_of_float (0.25 /. est)) in
  let times =
    Array.init reps (fun _ ->
        let t0 = Sys.time () in
        ignore (f ());
        Sys.time () -. t0)
  in
  Mirror_util.Stat.median times

let ms x = Tablefmt.cell_float ~prec:2 (1000.0 *. x)

(* {1 BENCH_core.json accumulation} *)

let json_entries : Json.t list ref = ref [] (* reversed *)

let record_entry id fields =
  json_entries := Json.Obj (("id", Json.Str id) :: fields) :: !json_entries

let json_ms s = Json.Float (1000.0 *. s)

let json_of_snapshot (s : Metrics.snapshot) =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.Metrics.counters));
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, h) ->
               ( k,
                 Json.Obj
                   [
                     ("count", Json.Int h.Metrics.count);
                     ("p50", Json.Float h.Metrics.p50);
                     ("p95", Json.Float h.Metrics.p95);
                     ("max", Json.Float h.Metrics.max);
                     ("total", Json.Float h.Metrics.total);
                   ] ))
             s.Metrics.histograms) );
    ]

(* One untimed evaluation with the metrics registry enabled; returns the
   resulting op-level snapshot as JSON.  The registry is reset on both
   sides so timed runs never pay for metric recording. *)
let metered f =
  Metrics.reset ();
  ignore (Metrics.with_enabled f);
  let snap = json_of_snapshot (Metrics.snapshot ()) in
  Metrics.reset ();
  snap

let write_bench_json () =
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "mirror-bench-core/v1");
        ("mode", Json.Str (if quick then "quick" else "full"));
        ("experiments", Json.Arr (List.rev !json_entries));
      ]
  in
  let oc = open_out "BENCH_core.json" in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_core.json (%d experiment entries)\n"
    (List.length !json_entries)

(* {1 Synthetic text collections (paper-shaped TraditionalImgLib)} *)

let vocab_size = 150

let zipf_word g =
  let weights = Array.init vocab_size (fun i -> 1.0 /. Float.of_int (i + 1)) in
  Printf.sprintf "w%d" (Prng.sample_weighted g weights)

let text_rows g ~n =
  List.init n (fun i ->
      let words = List.init (10 + Prng.int g 20) (fun _ -> zipf_word g) in
      Value.Tup
        [
          ("source", Value.str (Printf.sprintf "img://%d" i));
          ("year", Value.int (1990 + Prng.int g 12));
          ("annotation", Value.contrep (Mirror_ir.Tokenize.bag_of_words words));
        ])

let docs_schema =
  "define Docs as SET< TUPLE< Atomic<URL>: source, Atomic<int>: year, CONTREP<Text>: \
   annotation > >;"

let make_docs ~n =
  let m = Mirror.create () in
  ignore (ok (Mirror.exec_program m docs_schema));
  ignore (ok (Mirror.load m ~name:"Docs" (text_rows (Prng.create (77 + n)) ~n)));
  m

let query_terms = [ "w5"; "w12" ]
let bindings = [ ("query", Expr.lit_str_set query_terms) ]

(* {1 Static vetting of the benchmark workloads}

   Before timing anything, push every query string the experiments use
   through the MIL plan verifier and the differential checker
   ({!Mirror_core.Plancheck.vet}) — a malformed workload should fail
   loudly up front, not benchmark garbage. *)

let docs_workload =
  [
    "map[sum(THIS)]( map[getBL(THIS.annotation, query, stats)]( Docs ))";
    "map[sum(getBL(THIS.annotation, query, stats))](Docs)";
    "sum(map[THIS.year](select[THIS.year < 1996](Docs)))";
    "max(map[THIS.year * 3 - 2](Docs))";
    "count(flatten(map[terms(THIS.annotation)](Docs)))";
    "count(semijoin[THIS1.year = THIS2.year + 11](Docs, Docs))";
  ]

let vet_workloads () =
  let m = make_docs ~n:16 in
  let st = Mirror.storage m in
  (* metered so the VET entry snapshots the translation-validation
     counters (moacheck.validations / moacheck.envelope_checks) *)
  Metrics.reset ();
  let failures =
    Metrics.with_enabled (fun () ->
        List.filter_map
          (fun src ->
            match Mirror_core.Plancheck.vet st (ok (Parser.parse_expr ~bindings src)) with
            | Ok () -> None
            | Error e -> Some (Printf.sprintf "  %s\n    %s" src e))
          docs_workload)
  in
  let snap = Metrics.snapshot () in
  let snapshot = json_of_snapshot snap in
  Metrics.reset ();
  if failures <> [] then begin
    Printf.printf "workload vetting FAILED:\n%s\n" (String.concat "\n" failures);
    exit 1
  end;
  let counter k = Option.value ~default:0 (List.assoc_opt k snap.Metrics.counters) in
  Printf.printf
    "workloads vetted: %d queries pass both analysis layers (%d flattenings validated, %d \
     envelopes checked)\n"
    (List.length docs_workload)
    (counter "moacheck.validations")
    (counter "moacheck.envelope_checks");
  record_entry "VET"
    [
      ("queries", Json.Int (List.length docs_workload));
      ("metrics", snapshot);
    ]

(* {1 F1: the figure-1 pipeline} *)

let experiment_f1 () =
  section "F1: the distributed architecture of figure 1, executed";
  let n = if quick then 8 else 16 in
  let scenes = Synth.corpus (Prng.create 11) ~n ~width:48 ~height:48 () in
  let m = Mirror.create () in
  (* metrics on for the (single-shot) build: per-daemon latency
     histograms and bus counters land in the F1 snapshot *)
  Metrics.reset ();
  let t0 = Sys.time () in
  let report = Metrics.with_enabled (fun () -> ok (Mirror.build_image_library m ~scenes ())) in
  let elapsed = Sys.time () -. t0 in
  let snapshot = json_of_snapshot (Metrics.snapshot ()) in
  Metrics.reset ();
  let t =
    Tablefmt.create
      ~title:
        (Printf.sprintf "daemon activity over %d images (total %.2f s, %.1f images/s)" n
           elapsed
           (Float.of_int n /. Float.max elapsed 1e-9))
      [
        ("daemon", Tablefmt.Left);
        ("handled", Tablefmt.Right);
        ("produced", Tablefmt.Right);
        ("failures", Tablefmt.Right);
        ("cpu (s)", Tablefmt.Right);
      ]
  in
  List.iter
    (fun s ->
      Tablefmt.add_row t
        [
          s.Orchestrator.name;
          Tablefmt.cell_int s.Orchestrator.handled;
          Tablefmt.cell_int s.Orchestrator.produced;
          Tablefmt.cell_int s.Orchestrator.failures;
          Tablefmt.cell_float s.Orchestrator.cpu_seconds;
        ])
    report.Orchestrator.stats;
  Tablefmt.print t;
  Printf.printf "pipeline rounds: %d, dead letters: %d, library size: %d\n"
    report.Orchestrator.rounds
    (List.length report.Orchestrator.dead_letters)
    (Mirror.library_size m);
  record_entry "F1"
    [
      ("images", Json.Int n);
      ("seconds", Json.Float elapsed);
      ("rounds", Json.Int report.Orchestrator.rounds);
      ("dead_letters", Json.Int (List.length report.Orchestrator.dead_letters));
      ( "daemons",
        Json.Arr
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("name", Json.Str s.Orchestrator.name);
                   ("handled", Json.Int s.Orchestrator.handled);
                   ("produced", Json.Int s.Orchestrator.produced);
                   ("failures", Json.Int s.Orchestrator.failures);
                   ("cpu_seconds", Json.Float s.Orchestrator.cpu_seconds);
                 ])
             report.Orchestrator.stats) );
      ("metrics", snapshot);
    ]

(* {1 Q1: the section-3 query, latency vs collection size} *)

let experiment_q1 () =
  section "Q1: map[sum(THIS)](map[getBL(THIS.annotation, query, stats)](Lib))";
  let sizes = if quick then [ 100; 400 ] else [ 100; 400; 1600; 6400 ] in
  let t =
    Tablefmt.create ~title:"latency of the paper's ranking query (2 query terms)"
      [
        ("documents", Tablefmt.Right);
        ("ms/query", Tablefmt.Right);
        ("us/query/doc", Tablefmt.Right);
      ]
  in
  let rows = ref [] in
  let last_snapshot = ref Json.Null in
  List.iter
    (fun n ->
      let m = make_docs ~n in
      let expr =
        ok
          (Parser.parse_expr ~bindings
             "map[sum(THIS)]( map[getBL(THIS.annotation, query, stats)]( Docs ))")
      in
      let st = Mirror.storage m in
      let s = seconds_per_run (fun () -> ok (Eval.query_value st expr)) in
      last_snapshot := metered (fun () -> ok (Eval.query_value st expr));
      rows :=
        Json.Obj
          [
            ("documents", Json.Int n);
            ("median_ms", json_ms s);
            ("us_per_doc", Json.Float (1e6 *. s /. Float.of_int n));
          ]
        :: !rows;
      Tablefmt.add_row t
        [
          Tablefmt.cell_int n;
          ms s;
          Tablefmt.cell_float ~prec:2 (1e6 *. s /. Float.of_int n);
        ])
    sizes;
  Tablefmt.print t;
  record_entry "Q1"
    [
      ("sizes", Json.Arr (List.map (fun n -> Json.Int n) sizes));
      ("rows", Json.Arr (List.rev !rows));
      ("metrics", !last_snapshot);
    ];
  print_endline "expected shape: latency grows ~linearly; per-document cost roughly flat."

(* {1 E1: set-at-a-time vs object-at-a-time} *)

let experiment_e1 () =
  section "E1: flattened (set-at-a-time) vs naive (object-at-a-time) evaluation";
  let sizes = if quick then [ 100; 400 ] else [ 100; 400; 1600 ] in
  let queries =
    [
      ("rank", "map[sum(getBL(THIS.annotation, query, stats))](Docs)");
      ("filter+aggregate", "sum(map[THIS.year](select[THIS.year < 1996](Docs)))");
      ("arithmetic map", "max(map[THIS.year * 3 - 2](Docs))");
      ("terms scan", "count(flatten(map[terms(THIS.annotation)](Docs)))");
      ("equi semijoin", "count(semijoin[THIS1.year = THIS2.year + 11](Docs, Docs))");
    ]
  in
  let t =
    Tablefmt.create ~title:"query latency (ms); speedup = naive / flattened"
      [
        ("query", Tablefmt.Left);
        ("documents", Tablefmt.Right);
        ("naive", Tablefmt.Right);
        ("flattened", Tablefmt.Right);
        ("speedup", Tablefmt.Right);
      ]
  in
  let rows = ref [] in
  let last_snapshot = ref Json.Null in
  List.iter
    (fun n ->
      let m = make_docs ~n in
      let st = Mirror.storage m in
      List.iter
        (fun (label, src) ->
          let expr = ok (Parser.parse_expr ~bindings src) in
          let nv = Naive.eval st expr and fv = ok (Eval.query_value st expr) in
          if not (Value.equal nv fv) then begin
            Printf.printf "!! evaluators disagree on %s\n" label;
            exit 1
          end;
          let t_naive = seconds_per_run (fun () -> Naive.eval st expr) in
          let t_flat = seconds_per_run (fun () -> ok (Eval.query_value st expr)) in
          if label = "rank" then
            last_snapshot := metered (fun () -> ok (Eval.query_value st expr));
          rows :=
            Json.Obj
              [
                ("query", Json.Str label);
                ("documents", Json.Int n);
                ("naive_ms", json_ms t_naive);
                ("flattened_ms", json_ms t_flat);
                ("speedup", Json.Float (t_naive /. t_flat));
              ]
            :: !rows;
          Tablefmt.add_row t
            [
              label;
              Tablefmt.cell_int n;
              ms t_naive;
              ms t_flat;
              Tablefmt.cell_float ~prec:1 (t_naive /. t_flat) ^ "x";
            ])
        queries)
    sizes;
  Tablefmt.print t;
  record_entry "E1"
    [
      ("sizes", Json.Arr (List.map (fun n -> Json.Int n) sizes));
      ("rows", Json.Arr (List.rev !rows));
      ("metrics", !last_snapshot);
    ];
  print_endline
    "expected shape: the flattened plans win, and the factor grows with collection\n\
     size — most dramatically on joins, where set-at-a-time execution uses whole-\n\
     column algorithms instead of per-object loops ([BWK98]: \"allows often for\n\
     set-at-a-time processing\")."

(* {1 E2: dedicated physical operator vs composed generic plan} *)

let experiment_e2 () =
  section "E2: physical getBL operator vs belief composed from generic operators";
  let sizes = if quick then [ 200 ] else [ 200; 800 ] in
  let rows = ref [] in
  let last_snapshot = ref Json.Null in
  let t =
    Tablefmt.create
      ~title:"single-term belief over the whole collection (ms); results identical"
      [
        ("documents", Tablefmt.Right);
        ("physical getBL", Tablefmt.Right);
        ("composed tf/clen plan", Tablefmt.Right);
        ("ratio", Tablefmt.Right);
        ("max |diff|", Tablefmt.Right);
      ]
  in
  List.iter
    (fun n ->
      let m = make_docs ~n in
      let st = Mirror.storage m in
      let sp = Option.get (Storage.space_find st "Docs#el/annotation") in
      let term = "w5" in
      let df = Space.df sp (Option.get (Mirror_ir.Vocab.find (Space.vocab sp) term)) in
      let ndocs = Space.ndocs sp in
      let idf = Belief.idf_part ~df ~ndocs in
      let avg = Space.avg_doc_len sp in
      let physical =
        ok
          (Parser.parse_expr
             (Printf.sprintf "map[sum(getBL(THIS.annotation, {'%s'}))](Docs)" term))
      in
      let composed =
        ok
          (Parser.parse_expr
             (Printf.sprintf
                "map[0.4 + 0.6 * (tf(THIS.annotation,'%s') / (tf(THIS.annotation,'%s') + 0.5 \
                 + 1.5 * (clen(THIS.annotation) / %.12g))) * %.12g](Docs)"
                term term avg idf))
      in
      let vp = ok (Eval.query_value st physical) in
      let vc = ok (Eval.query_value st composed) in
      let scores v =
        List.map (fun x -> Atom.as_float (Value.as_atom x)) (Value.as_set v)
        |> List.sort Float.compare
      in
      let max_diff =
        List.fold_left2
          (fun acc a b -> Float.max acc (Float.abs (a -. b)))
          0.0 (scores vp) (scores vc)
      in
      let t_phys = seconds_per_run (fun () -> ok (Eval.query_value st physical)) in
      let t_comp = seconds_per_run (fun () -> ok (Eval.query_value st composed)) in
      last_snapshot := metered (fun () -> ok (Eval.query_value st physical));
      rows :=
        Json.Obj
          [
            ("documents", Json.Int n);
            ("physical_ms", json_ms t_phys);
            ("composed_ms", json_ms t_comp);
            ("ratio", Json.Float (t_comp /. t_phys));
            ("max_abs_diff", Json.Float max_diff);
          ]
        :: !rows;
      Tablefmt.add_row t
        [
          Tablefmt.cell_int n;
          ms t_phys;
          ms t_comp;
          Tablefmt.cell_float ~prec:1 (t_comp /. t_phys) ^ "x";
          Printf.sprintf "%.1e" max_diff;
        ])
    sizes;
  Tablefmt.print t;
  record_entry "E2"
    [
      ("sizes", Json.Arr (List.map (fun n -> Json.Int n) sizes));
      ("rows", Json.Arr (List.rev !rows));
      ("metrics", !last_snapshot);
    ];
  print_endline
    "expected shape: the dedicated probabilistic operator beats the equivalent\n\
     composition of generic operators (\"new probabilistic operators at the physical\n\
     level provide an efficient implementation\")."

(* {1 E3: integrated IR+DB query vs two-system post-filtering} *)

let experiment_e3 () =
  section "E3: one integrated query vs IR system + DB system post-filter";
  let sizes = if quick then [ 200 ] else [ 200; 800 ] in
  let rows = ref [] in
  let t =
    Tablefmt.create ~title:"rank only years < 1996 (ms)"
      [
        ("documents", Tablefmt.Right);
        ("selectivity", Tablefmt.Right);
        ("integrated", Tablefmt.Right);
        ("two-system", Tablefmt.Right);
        ("ratio", Tablefmt.Right);
      ]
  in
  List.iter
    (fun n ->
      let m = make_docs ~n in
      let st = Mirror.storage m in
      let integrated =
        ok
          (Parser.parse_expr ~bindings
             "map[tuple(s: THIS.source, score: sum(getBL(THIS.annotation, query, \
              stats)))](select[THIS.year < 1996](Docs))")
      in
      (* "two systems": the IR engine ranks everything, the DB returns
         the year column, the application glues them. *)
      let rank_all =
        ok
          (Parser.parse_expr ~bindings
             "map[tuple(s: THIS.source, score: sum(getBL(THIS.annotation, query, \
              stats)))](Docs)")
      in
      let years = ok (Parser.parse_expr "map[tuple(s: THIS.source, y: THIS.year)](Docs)") in
      let two_system () =
        let ranked = ok (Eval.query_value st rank_all) in
        let year_rows = ok (Eval.query_value st years) in
        let year_of = Hashtbl.create 64 in
        List.iter
          (fun row ->
            Hashtbl.replace year_of
              (Atom.as_string (Value.as_atom (Value.field_exn row "s")))
              (Atom.as_int (Value.as_atom (Value.field_exn row "y"))))
          (Value.as_set year_rows);
        List.filter
          (fun row ->
            match
              Hashtbl.find_opt year_of
                (Atom.as_string (Value.as_atom (Value.field_exn row "s")))
            with
            | Some y -> y < 1996
            | None -> false)
          (Value.as_set ranked)
      in
      let integrated_rows = Value.as_set (ok (Eval.query_value st integrated)) in
      let sel = Float.of_int (List.length integrated_rows) /. Float.of_int n in
      if not (Value.equal (Value.VSet integrated_rows) (Value.VSet (two_system ()))) then begin
        print_endline "!! integrated and two-system results disagree";
        exit 1
      end;
      let t_int = seconds_per_run (fun () -> ok (Eval.query_value st integrated)) in
      let t_two = seconds_per_run (fun () -> two_system ()) in
      rows :=
        Json.Obj
          [
            ("documents", Json.Int n);
            ("selectivity", Json.Float sel);
            ("integrated_ms", json_ms t_int);
            ("two_system_ms", json_ms t_two);
            ("ratio", Json.Float (t_two /. t_int));
          ]
        :: !rows;
      Tablefmt.add_row t
        [
          Tablefmt.cell_int n;
          Tablefmt.cell_float ~prec:2 sel;
          ms t_int;
          ms t_two;
          Tablefmt.cell_float ~prec:1 (t_two /. t_int) ^ "x";
        ])
    sizes;
  Tablefmt.print t;
  record_entry "E3"
    [
      ("sizes", Json.Arr (List.map (fun n -> Json.Int n) sizes));
      ("rows", Json.Arr (List.rev !rows));
    ];
  print_endline
    "expected shape: pushing the relational selection below ranking beats ranking\n\
     everything and post-filtering (\"an efficient integration of information and\n\
     data retrieval\")."

(* {1 E4: optimisation ablations} *)

let experiment_e4 () =
  section "E4: algebraic rewriting and common-subexpression elimination";
  let n = if quick then 2000 else 8000 in
  let m = Mirror.create () in
  ignore
    (ok
       (Mirror.exec_program m "define Nums as SET< TUPLE< Atomic<int>: a, Atomic<int>: b > >;"));
  let g = Prng.create 5 in
  ignore
    (ok
       (Mirror.load m ~name:"Nums"
          (List.init n (fun _ ->
               Value.Tup
                 [ ("a", Value.int (Prng.int g 100)); ("b", Value.int (Prng.int g 100)) ]))));
  let st = Mirror.storage m in
  let fusable =
    ok
      (Parser.parse_expr
         "map[THIS + 1](map[THIS * 2](map[THIS.a + THIS.b](select[THIS.a > 10](select[THIS.b \
          > 10](Nums)))))")
  in
  let t =
    Tablefmt.create ~title:(Printf.sprintf "rewriting (map/select chains over %d rows)" n)
      [
        ("configuration", Tablefmt.Left);
        ("plan nodes", Tablefmt.Right);
        ("ops evaluated", Tablefmt.Right);
        ("ms/query", Tablefmt.Right);
      ]
  in
  let rewrite_rows = ref [] in
  let optimised_s = ref 0.0 in
  let row label ~optimize ~cse expr =
    let report = ok (Eval.query ~optimize ~cse st expr) in
    let s = seconds_per_run (fun () -> ok (Eval.query ~optimize ~cse st expr)) in
    if optimize then optimised_s := s;
    rewrite_rows :=
      Json.Obj
        [
          ("configuration", Json.Str label);
          ("plan_nodes", Json.Int report.Eval.plan_nodes);
          ("ops_evaluated", Json.Int report.Eval.evaluated);
          ("median_ms", json_ms s);
        ]
      :: !rewrite_rows;
    Tablefmt.add_row t
      [ label; Tablefmt.cell_int report.Eval.plan_nodes; Tablefmt.cell_int report.Eval.evaluated; ms s ]
  in
  row "unoptimised" ~optimize:false ~cse:true fusable;
  row "optimised (fusion + pushdown)" ~optimize:true ~cse:true fusable;
  let _, trace = Optimize.rewrite_trace fusable in
  Tablefmt.add_rowf t "rules fired: %s" (String.concat ", " trace);
  Tablefmt.print t;

  (* tracing-overhead ablation: the default (Trace.null) path must cost
     the same as before the observability layer existed — the span code
     is behind a single is_on branch — while an enabled trace pays for
     one span per executed operator. *)
  let t_off =
    seconds_per_run (fun () -> ok (Eval.query ~optimize:true ~cse:true st fusable))
  in
  let t_on =
    seconds_per_run (fun () ->
        ok (Eval.query ~optimize:true ~cse:true ~trace:(Trace.create ()) st fusable))
  in
  let ta =
    Tablefmt.create ~title:"tracing-overhead ablation (optimised plan)"
      [ ("configuration", Tablefmt.Left); ("ms/query", Tablefmt.Right) ]
  in
  Tablefmt.add_row ta [ "tracing disabled (default)"; ms t_off ];
  Tablefmt.add_row ta [ "tracing enabled"; ms t_on ];
  Tablefmt.add_rowf ta "enabled/disabled ratio: %.2f" (t_on /. Float.max t_off 1e-9);
  Tablefmt.print ta;

  (* the equi-join physical specialisation *)
  let njoin = if quick then 400 else 1200 in
  let mj = Mirror.create () in
  ignore
    (ok (Mirror.exec_program mj "define J as SET< TUPLE< Atomic<int>: k, Atomic<int>: v > >;"));
  let gj = Prng.create 9 in
  ignore
    (ok
       (Mirror.load mj ~name:"J"
          (List.init njoin (fun _ ->
               Value.Tup
                 [ ("k", Value.int (Prng.int gj 50)); ("v", Value.int (Prng.int gj 1000)) ]))));
  let stj = Mirror.storage mj in
  let joinq = ok (Parser.parse_expr "count(semijoin[THIS1.k = THIS2.v](J, J))") in
  let tj =
    Tablefmt.create
      ~title:(Printf.sprintf "equi-join specialisation (self semijoin over %d rows)" njoin)
      [ ("configuration", Tablefmt.Left); ("ms/query", Tablefmt.Right) ]
  in
  let join_rows = ref [] in
  List.iter
    (fun (label, specialize) ->
      let s =
        seconds_per_run (fun () -> ok (Eval.query ~optimize:false ~specialize stj joinq))
      in
      join_rows :=
        Json.Obj [ ("configuration", Json.Str label); ("median_ms", json_ms s) ] :: !join_rows;
      Tablefmt.add_row tj [ label; ms s ])
    [ ("hash equi-join", true); ("cross product + filter", false) ];
  Tablefmt.print tj;

  let mdocs = make_docs ~n:(if quick then 150 else 400) in
  let std = Mirror.storage mdocs in
  let repeated =
    ok
      (Parser.parse_expr ~bindings
         "map[sum(getBL(THIS.annotation, query, stats)) + sum(getBL(THIS.annotation, query, \
          stats))](Docs)")
  in
  let t2 =
    Tablefmt.create ~title:"CSE on a query with a repeated getBL subexpression"
      [
        ("configuration", Tablefmt.Left);
        ("ops evaluated", Tablefmt.Right);
        ("memo hits", Tablefmt.Right);
        ("ms/query", Tablefmt.Right);
      ]
  in
  let cse_rows = ref [] in
  List.iter
    (fun (label, cse) ->
      let report = ok (Eval.query ~optimize:false ~cse std repeated) in
      let s = seconds_per_run (fun () -> ok (Eval.query ~optimize:false ~cse std repeated)) in
      cse_rows :=
        Json.Obj
          [
            ("configuration", Json.Str label);
            ("ops_evaluated", Json.Int report.Eval.evaluated);
            ("memo_hits", Json.Int report.Eval.memo_hits);
            ("median_ms", json_ms s);
          ]
        :: !cse_rows;
      Tablefmt.add_row t2
        [
          label;
          Tablefmt.cell_int report.Eval.evaluated;
          Tablefmt.cell_int report.Eval.memo_hits;
          ms s;
        ])
    [ ("with CSE (memo table)", true); ("without CSE", false) ];
  Tablefmt.print t2;
  record_entry "E4"
    [
      ("sizes", Json.Arr [ Json.Int n; Json.Int njoin ]);
      ("rows", Json.Arr (List.rev !rewrite_rows));
      ("rules_fired", Json.Arr (List.map (fun r -> Json.Str r) trace));
      ( "trace_ablation",
        Json.Obj
          [
            ("baseline_ms", json_ms !optimised_s);
            ("trace_off_ms", json_ms t_off);
            ("trace_on_ms", json_ms t_on);
            ("off_over_baseline", Json.Float (t_off /. Float.max !optimised_s 1e-9));
            ("on_over_off", Json.Float (t_on /. Float.max t_off 1e-9));
          ] );
      ("join_rows", Json.Arr (List.rev !join_rows));
      ("cse_rows", Json.Arr (List.rev !cse_rows));
      ("metrics", metered (fun () -> ok (Eval.query ~optimize:false std repeated)));
    ];
  print_endline
    "expected shape: optimised plans are smaller and faster; CSE halves the work of\n\
     the duplicated ranking subplan (\"an excellent basis for algebraic query\n\
     optimization\")."

(* {1 E5: component micro-benchmarks (bechamel)} *)

let bechamel_rows tests =
  let open Bechamel in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000
      ~quota:(Time.second (if quick then 0.1 else 0.25))
      ~kde:None ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let res = Analyze.all ols instance raw in
  Hashtbl.fold
    (fun name ols acc ->
      let est = match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> Float.nan in
      (name, est) :: acc)
    res []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let experiment_e5 () =
  section "E5: component micro-benchmarks (bechamel OLS estimates)";
  let open Bechamel in
  let g = Prng.create 99 in
  let big_bat =
    Bat.make (Column.dense 0 10_000)
      (Column.I (Array.init 10_000 (fun i -> i * 7919 mod 1000)))
  in
  let link_bat =
    Bat.make (Column.dense 0 10_000) (Column.O (Array.init 10_000 (fun i -> i mod 100)))
  in
  let image = Synth.render_texture (Prng.create 3) ~width:48 ~height:48 Synth.Stripes 0 in
  let region = { Segment.x = 0; y = 0; w = 32; h = 32 } in
  let pts =
    Array.init 100 (fun i ->
        if i mod 2 = 0 then Prng.gaussian_mv g ~mean:[| 0.; 0. |] ~sigma:[| 0.4; 0.4 |]
        else Prng.gaussian_mv g ~mean:[| 3.; 3. |] ~sigma:[| 0.4; 0.4 |])
  in
  let mdocs = make_docs ~n:200 in
  let st = Mirror.storage mdocs in
  let rank_src = "map[sum(getBL(THIS.annotation, query, stats))](Docs)" in
  let rank_expr = ok (Parser.parse_expr ~bindings rank_src) in
  let net = Querynet.flat query_terms in
  let tests =
    Test.make_grouped ~name:"e5"
      [
        Test.make ~name:"bat: join 10k"
          (Staged.stage (fun () -> Bat.join link_bat big_bat));
        Test.make ~name:"bat: select eq 10k"
          (Staged.stage (fun () -> Bat.select_cmp big_bat Bat.Eq (Atom.Int 500)));
        Test.make ~name:"bat: group-sum 10k/100"
          (Staged.stage (fun () ->
               Bat.group_aggr Bat.Sum (Bat.join (Bat.reverse link_bat) big_bat)));
        Test.make ~name:"bat: sort 10k" (Staged.stage (fun () -> Bat.sort_tail big_bat));
        Test.make ~name:"ir: default belief"
          (Staged.stage (fun () ->
               Belief.belief ~tf:3.0 ~df:7 ~ndocs:1000 ~doclen:20.0 ~avg_doclen:18.0));
        Test.make ~name:"ir: porter stem" (Staged.stage (fun () -> Porter.stem "multimedia"));
        Test.make ~name:"ir: querynet eval"
          (Staged.stage (fun () -> Querynet.eval (fun _ -> 0.5) net));
        Test.make ~name:"mm: segmentation 48x48"
          (Staged.stage (fun () -> Segment.segment_flat image));
        Test.make ~name:"mm: rgb histogram 32x32"
          (Staged.stage (fun () -> Mirror_mm.Histogram.rgb image region));
        Test.make ~name:"mm: glcm 32x32"
          (Staged.stage (fun () -> Mirror_mm.Glcm.extract image region));
        Test.make ~name:"mm: mrf 32x32"
          (Staged.stage (fun () -> Mirror_mm.Mrf.extract image region));
        Test.make ~name:"mm: fractal 32x32"
          (Staged.stage (fun () -> Mirror_mm.Fractal.extract image region));
        Test.make ~name:"mm: gabor 32x32"
          (Staged.stage (fun () -> Mirror_mm.Gabor.extract image region));
        Test.make ~name:"mm: kmeans k=2 n=100"
          (Staged.stage (fun () -> Kmeans.run (Prng.create 1) ~k:2 pts));
        Test.make ~name:"mm: EM fit k=2 n=100"
          (Staged.stage (fun () ->
               Autoclass.fit (Prng.create 1) ~k:2 ~restarts:1 ~max_iter:20 pts));
        Test.make ~name:"bat: merge semijoin 10k"
          (Staged.stage
             (let sorted_l =
                Bat.make (Column.dense 0 10_000) (Column.O (Array.init 10_000 (fun i -> i)))
              in
              let sorted_r =
                Bat.make (Column.O (Array.init 3_000 (fun i -> i * 3))) (Column.dense 0 3_000)
              in
              fun () -> Bat.semijoin sorted_l sorted_r));
        Test.make ~name:"moa: parse rank query"
          (Staged.stage (fun () -> ok (Parser.parse_expr ~bindings rank_src)));
        Test.make ~name:"moa: exec rank query (200 docs)"
          (Staged.stage (fun () -> ok (Eval.query_value st rank_expr)));
      ]
  in
  let rows = bechamel_rows tests in
  let t =
    Tablefmt.create
      [ ("benchmark", Tablefmt.Left); ("ns/op", Tablefmt.Right); ("us/op", Tablefmt.Right) ]
  in
  List.iter
    (fun (name, ns) ->
      Tablefmt.add_row t
        [ name; Printf.sprintf "%.0f" ns; Tablefmt.cell_float ~prec:2 (ns /. 1000.0) ])
    rows;
  Tablefmt.print t;
  record_entry "E5"
    [
      ( "rows",
        Json.Arr
          (List.map
             (fun (name, ns) ->
               Json.Obj [ ("benchmark", Json.Str name); ("ns_per_op", Json.Float ns) ])
             rows) );
      ("metrics", metered (fun () -> ok (Eval.query_value st rank_expr)));
    ]

(* {1 Q2 + E6: the retrieval session and its quality} *)

let doc_index url =
  match String.rindex_opt url '/' with
  | Some i -> int_of_string (String.sub url (i + 1) (String.length url - i - 1))
  | None -> -1

let experiment_q2_e6 () =
  section "Q2: the section-5.2 retrieval session";
  let n = if quick then 16 else 30 in
  let scenes =
    Synth.corpus (Prng.create 2025) ~n ~width:48 ~height:48 ~annotated_fraction:0.7 ()
  in
  let m = Mirror.create () in
  ignore (ok (Mirror.build_image_library m ~scenes ()));
  let show query =
    let hits = ok (Mirror.search m ~limit:5 ~mode:Mirror.Dual query) in
    Printf.printf "query %-9S -> " query;
    List.iter
      (fun (url, s) ->
        let star =
          if Synth.relevant scenes.(doc_index url) ~query_words:[ query ] then "*" else ""
        in
        Printf.printf "%s%s(%.3f) " url star s)
      hits;
    print_newline ()
  in
  show "stripes";
  show "waves";
  show "red";
  print_endline "(* marks ground-truth-relevant images)";

  section "E6: retrieval quality — dual coding and relevance feedback";
  let queries = List.map Synth.class_name Synth.all_classes @ [ "red"; "blue"; "green" ] in
  let relevant_for q url = Synth.relevant scenes.(doc_index url) ~query_words:[ q ] in
  let quality mode =
    let ap_list, p5_list =
      List.fold_left
        (fun (aps, p5s) q ->
          match Mirror.search m ~limit:n ~mode q with
          | Error _ -> (aps, p5s)
          | Ok hits ->
            let ranked = List.map fst hits in
            let rel = relevant_for q in
            ( Feedback.average_precision ~ranked ~relevant:rel :: aps,
              Feedback.precision_at 5 ~ranked ~relevant:rel :: p5s ))
        ([], []) queries
    in
    let mean xs = List.fold_left ( +. ) 0.0 xs /. Float.of_int (max 1 (List.length xs)) in
    (mean ap_list, mean p5_list)
  in
  let t =
    Tablefmt.create
      ~title:(Printf.sprintf "mean over %d queries, %d images" (List.length queries) n)
      [ ("mode", Tablefmt.Left); ("MAP", Tablefmt.Right); ("P@5", Tablefmt.Right) ]
  in
  List.iter
    (fun (label, mode) ->
      let map_, p5 = quality mode in
      Tablefmt.add_row t [ label; Tablefmt.cell_float map_; Tablefmt.cell_float p5 ])
    [
      ("text-only", Mirror.Text_only);
      ("image-only (thesaurus)", Mirror.Image_only);
      ("dual coding", Mirror.Dual);
    ];
  Tablefmt.print t;

  (* thesaurus quality: does a texture word map to texture-space
     clusters and a colour word to colour-space clusters? *)
  let texture_spaces = [ "gabor"; "glcm"; "mrf"; "fractal" ] in
  let colour_spaces = [ "rgb"; "hsv" ] in
  let modality_match expected_spaces qs =
    let hits =
      List.filter
        (fun q ->
          let concepts = List.filteri (fun i _ -> i < 3) (Mirror.thesaurus_lookup m q) in
          List.exists
            (fun (c, _) ->
              match Mirror_mm.Vocabmap.parse_term c with
              | Some (space, _) -> List.mem space expected_spaces
              | None -> false)
            concepts)
        qs
    in
    Float.of_int (List.length hits) /. Float.of_int (max 1 (List.length qs))
  in
  let t15 =
    Tablefmt.create ~title:"thesaurus modality match (top-3 concepts)"
      [ ("query kind", Tablefmt.Left); ("match rate", Tablefmt.Right) ]
  in
  Tablefmt.add_row t15
    [
      "texture words -> texture clusters";
      Tablefmt.cell_float
        (modality_match texture_spaces (List.map Synth.class_name Synth.all_classes));
    ];
  Tablefmt.add_row t15
    [
      "colour words -> colour clusters";
      Tablefmt.cell_float (modality_match colour_spaces [ "red"; "blue"; "green" ]);
    ];
  Tablefmt.print t15;

  let t2 =
    Tablefmt.create ~title:"relevance feedback (dual mode), thesaurus adaptation"
      [ ("round", Tablefmt.Right); ("mean P@5", Tablefmt.Right) ]
  in
  let p5_round round =
    let p5s =
      List.filter_map
        (fun q ->
          match Mirror.search m ~limit:8 ~mode:Mirror.Dual q with
          | Error _ -> None
          | Ok hits ->
            let judgements = List.map (fun (url, _) -> (url, relevant_for q url)) hits in
            Mirror.give_feedback m ~query:q ~judgements;
            Some
              (Feedback.precision_at 5 ~ranked:(List.map fst hits)
                 ~relevant:(relevant_for q)))
        queries
    in
    Tablefmt.add_row t2
      [
        Tablefmt.cell_int round;
        Tablefmt.cell_float
          (List.fold_left ( +. ) 0.0 p5s /. Float.of_int (max 1 (List.length p5s)));
      ]
  in
  List.iter p5_round [ 1; 2; 3 ];
  Tablefmt.print t2;
  record_entry "E6"
    [
      ("images", Json.Int n);
      ("queries", Json.Int (List.length queries));
      ( "modes",
        Json.Arr
          (List.map
             (fun (label, mode) ->
               let map_, p5 = quality mode in
               Json.Obj
                 [
                   ("mode", Json.Str label);
                   ("map", Json.Float map_);
                   ("p_at_5", Json.Float p5);
                 ])
             [
               ("text-only", Mirror.Text_only);
               ("image-only", Mirror.Image_only);
               ("dual", Mirror.Dual);
             ]) );
    ];
  print_endline
    "expected shape: dual coding >= the better single coding on average;\n\
     P@5 non-decreasing over feedback rounds."

(* {1 RECOVERY: durable-store crash recovery} *)

module Durable = Mirror_store.Durable

let rec rm_rf path =
  match Sys.is_directory path with
  | exception Sys_error _ -> ()
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())

(* Build a durable store whose log holds [records] updates spread over
   [extents] extents (a Replace record's size grows with its extent, so
   spreading keeps record sizes realistic), abandon it uncheckpointed —
   as a crash would — and measure reopening it: log replay throughput
   and end-to-end recovery wall time, both recorded in BENCH_core.json
   so later PRs can diff them. *)
let experiment_recovery () =
  section "RECOVERY: WAL replay throughput and crash-recovery wall time";
  let records = if quick then 300 else 2000 in
  let extents = 32 in
  let dir = Filename.temp_file "mirror-bench-recovery" ".db" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (match Durable.open_ ~dir () with
  | Error e -> ok (Error e)
  | Ok (t, _) ->
    let m = Durable.mirror t in
    for i = 0 to extents - 1 do
      ignore
        (ok
           (Mirror.exec_program m
              (Printf.sprintf "define B%d as SET< TUPLE< Atomic<int>: a > >;" i)))
    done;
    ignore (ok (Durable.checkpoint t));
    let g = Prng.create 23 in
    for i = 0 to records - 1 do
      ignore
        (ok
           (Mirror.exec_program m
              (Printf.sprintf "insert into B%d tuple(a: %d);" (i mod extents)
                 (Prng.int g 1000))))
    done;
    Durable.abandon t);
  let status = ok (Durable.inspect ~dir) |> fst in
  let log_bytes = status.Durable.log_bytes in
  let t0 = Trace.now () in
  let t2, r = ok (Durable.open_ ~dir ()) in
  let recovery_s = Trace.now () -. t0 in
  ok (Durable.certify t2);
  Durable.close t2;
  let replayed = r.Durable.replayed in
  let per_s = Float.of_int replayed /. Float.max recovery_s 1e-9 in
  let t =
    Tablefmt.create ~title:"crash recovery (single shot)"
      [ ("measure", Tablefmt.Left); ("value", Tablefmt.Right) ]
  in
  Tablefmt.add_row t [ "records replayed"; Tablefmt.cell_int replayed ];
  Tablefmt.add_row t [ "log bytes scanned"; Tablefmt.cell_int log_bytes ];
  Tablefmt.add_row t [ "recovery wall time (ms)"; ms recovery_s ];
  Tablefmt.add_row t [ "replay throughput (records/s)"; Tablefmt.cell_float ~prec:0 per_s ];
  Tablefmt.print t;
  if replayed <> records then begin
    Printf.printf "RECOVERY: expected %d replayed records, got %d\n" records replayed;
    exit 1
  end;
  record_entry "RECOVERY"
    [
      ("records_replayed", Json.Int replayed);
      ("log_bytes", Json.Int log_bytes);
      ("recovery_ms", json_ms recovery_s);
      ("replay_records_per_s", Json.Float per_s);
      ("certified", Json.Bool true);
    ];
  print_endline
    "expected shape: every logged record replayed, recovery certified\n\
     (flattened vs naive agreement on every recovered extent)."

(* {1 CHAOS: the resilience fabric under seeded fault schedules} *)

module Daemon = Mirror_daemon.Daemon
module Standard = Mirror_daemon.Standard
module Faults = Mirror_daemon.Faults

(* Ingest a small scene set through a supervised orchestrator built
   over the given daemon set; returns the orchestrator and its run
   report (restarting after simulated process crashes). *)
let chaos_pipeline ~scenes ~daemons =
  let orch = Mirror_daemon.Orchestrator.create ~daemons () in
  Array.iteri
    (fun i (s : Synth.scene) ->
      let url = Printf.sprintf "img://%d" i in
      let annotation = Option.map (String.concat " ") s.Synth.caption in
      Mirror_daemon.Orchestrator.ingest_image orch ~doc:i ~url ?annotation s.Synth.image)
    scenes;
  Mirror_daemon.Orchestrator.complete_collection orch;
  let rec attempt n =
    match Mirror_daemon.Orchestrator.run orch with
    | report -> report
    | exception Faults.Crash _ when n < 10 -> attempt (n + 1)
  in
  (orch, attempt 0)

(* A store digest sufficient to witness convergence: what each daemon
   deposited, per document. *)
let chaos_digest orch =
  let module Store = Mirror_daemon.Store in
  let store = (Mirror_daemon.Orchestrator.ctx orch).Daemon.store in
  let docs = Store.docs store in
  let per_doc =
    List.map
      (fun doc ->
        ( doc,
          Option.map List.length (Store.segments store ~doc),
          Store.text store ~doc,
          List.sort compare (Store.visual_words store ~doc) ))
      docs
  in
  (per_doc, Store.clustered_spaces store, Store.thesaurus store <> None)

let experiment_chaos () =
  section "CHAOS: supervision fabric under seeded fault schedules";
  let schedules = if quick then 40 else 150 in
  let scenes = Synth.corpus (Prng.create 31) ~n:2 ~width:16 ~height:16 ~annotated_fraction:0.8 () in
  let baseline_orch, baseline = chaos_pipeline ~scenes ~daemons:(Standard.all ()) in
  assert baseline.Orchestrator.quiescent;
  let baseline_digest = chaos_digest baseline_orch in
  let quiesced = ref 0 in
  let converged = ref 0 in
  let dead_total = ref 0 in
  let redelivered_total = ref 0 in
  let rounds = ref [] in
  for seed = 0 to schedules - 1 do
    let g = Prng.create (0xC4A05 + seed) in
    let healed = ref false in
    let daemons =
      List.map
        (fun (d : Daemon.t) ->
          match Prng.int g 4 with
          | 0 ->
            let rate = 0.2 +. Prng.float g 0.6 in
            let gd = Prng.split g in
            Faults.switched
              (fun () -> (not !healed) && Prng.float gd 1.0 < rate)
              d
          | 1 -> Faults.switched (fun () -> not !healed) d
          | _ -> d)
        (Standard.all ())
    in
    let orch, report = chaos_pipeline ~scenes ~daemons in
    rounds := float_of_int report.Orchestrator.rounds :: !rounds;
    if report.Orchestrator.quiescent then incr quiesced;
    healed := true;
    (* drain the dead letters now that every fault is gone *)
    let rec recover n =
      let re = Mirror_daemon.Orchestrator.redeliver orch in
      redelivered_total := !redelivered_total + re;
      let r = Mirror_daemon.Orchestrator.run orch in
      if
        n < 10
        && ((not r.Orchestrator.quiescent)
           || Mirror_daemon.Orchestrator.dead_letters orch <> [])
      then recover (n + 1)
    in
    dead_total := !dead_total + List.length (Mirror_daemon.Orchestrator.dead_letters orch);
    recover 0;
    if chaos_digest orch = baseline_digest then incr converged
  done;
  let rounds_p50 = Mirror_util.Stat.median (Array.of_list !rounds) in
  (* degraded-run overhead: ingest with one permanently broken
     non-critical daemon vs the failure-free pipeline *)
  let clean_s = seconds_per_run (fun () -> chaos_pipeline ~scenes ~daemons:(Standard.all ())) in
  let degraded_s =
    seconds_per_run (fun () ->
        let daemons =
          List.map
            (fun (d : Daemon.t) ->
              if d.Daemon.name = "annotation-indexer" then Faults.broken d else d)
            (Standard.all ())
        in
        chaos_pipeline ~scenes ~daemons)
  in
  let t =
    Tablefmt.create ~title:(Printf.sprintf "%d seeded fault schedules" schedules)
      [ ("measure", Tablefmt.Left); ("value", Tablefmt.Right) ]
  in
  Tablefmt.add_row t [ "schedules"; Tablefmt.cell_int schedules ];
  Tablefmt.add_row t [ "quiesced first run"; Tablefmt.cell_int !quiesced ];
  Tablefmt.add_row t [ "converged after redelivery"; Tablefmt.cell_int !converged ];
  Tablefmt.add_row t [ "dead letters (total)"; Tablefmt.cell_int !dead_total ];
  Tablefmt.add_row t [ "redelivered (total)"; Tablefmt.cell_int !redelivered_total ];
  Tablefmt.add_row t [ "rounds to quiesce (p50)"; Tablefmt.cell_float ~prec:1 rounds_p50 ];
  Tablefmt.add_row t [ "failure-free run (ms)"; ms clean_s ];
  Tablefmt.add_row t [ "degraded run (ms)"; ms degraded_s ];
  Tablefmt.print t;
  if !converged <> schedules then begin
    Printf.printf "CHAOS: %d/%d schedules failed to converge\n" (schedules - !converged)
      schedules;
    exit 1
  end;
  record_entry "CHAOS"
    [
      ("schedules", Json.Int schedules);
      ("quiesced", Json.Int !quiesced);
      ("converged", Json.Int !converged);
      ("dead_letters", Json.Int !dead_total);
      ("redelivered", Json.Int !redelivered_total);
      ("rounds_p50", Json.Float rounds_p50);
      ("clean_ms", json_ms clean_s);
      ("degraded_ms", json_ms degraded_s);
    ];
  print_endline
    "expected shape: every schedule converges to the failure-free store\n\
     after healing and redelivery; the degraded run costs little more than\n\
     the clean one (the breaker sheds the downed daemon's work)."

(* {1 PARALLEL: morsel-parallel kernel vs the sequential kernel}

   Direct operator-level comparison on 1M-row BATs (100k in quick
   mode): full scans, a hash join and a grouped sum, sequential vs the
   domain pool at 2 and 4 domains.  Timed with the trace's wall clock —
   [Sys.time] sums CPU seconds across domains and would hide any
   speedup.  Every parallel result is checked [Bat.equal] against the
   sequential one (the kernel's determinism contract), and the entry
   records the host's core count: on a single-core host the speedups
   are honest slowdowns (pure scheduling overhead), so the validator
   only requires speedup >= 1 when [cores >= 4]. *)

let experiment_parallel () =
  section "PARALLEL: morsel-parallel kernel (OCaml 5 domains) vs sequential";
  let n = if quick then 100_000 else 1_000_000 in
  let cores = Domain.recommended_domain_count () in
  let g = Prng.create 1999 in
  let dense = Column.O (Array.init n (fun i -> i)) in
  let scan_b = Bat.make dense (Column.I (Array.init n (fun _ -> Prng.int g 1000))) in
  let m = max 1 (n / 8) in
  let join_l = Bat.make dense (Column.O (Array.init n (fun _ -> Prng.int g m))) in
  let join_r =
    Bat.make
      (Column.O (Array.init m (fun i -> i)))
      (Column.I (Array.init m (fun _ -> Prng.int g 1_000_000)))
  in
  let grp_b =
    Bat.make
      (Column.O (Array.init n (fun _ -> Prng.int g 1024)))
      (Column.I (Array.init n (fun _ -> Prng.int g 1000)))
  in
  let workloads =
    [
      ( "scan select",
        (fun () -> Bat.select_cmp scan_b Bat.Lt (Atom.Int 500)),
        fun pool -> Parkernel.select_cmp pool scan_b Bat.Lt (Atom.Int 500) );
      ( "hash join",
        (fun () -> Bat.join join_l join_r),
        fun pool -> Parkernel.join pool join_l join_r );
      ( "group sum",
        (fun () -> Bat.group_aggr Bat.Sum grp_b),
        fun pool -> Parkernel.group_aggr pool Bat.Sum grp_b );
    ]
  in
  (* wall clock, not [seconds_per_run]'s CPU clock *)
  let wall f =
    ignore (f ());
    let t0 = Trace.now () in
    ignore (f ());
    let est = Float.max (Trace.now () -. t0) 1e-6 in
    let reps = max 3 (min 25 (int_of_float (0.5 /. est))) in
    let times =
      Array.init reps (fun _ ->
          let t0 = Trace.now () in
          ignore (f ());
          Trace.now () -. t0)
    in
    Mirror_util.Stat.median times
  in
  let pools = List.map (fun d -> (d, Parkernel.create d)) [ 2; 4 ] in
  let t =
    Tablefmt.create
      ~title:
        (Printf.sprintf "wall-clock latency at %d rows (ms); host has %d core(s)" n cores)
      [
        ("operator", Tablefmt.Left);
        ("sequential", Tablefmt.Right);
        ("2 domains", Tablefmt.Right);
        ("speedup", Tablefmt.Right);
        ("4 domains", Tablefmt.Right);
        ("speedup", Tablefmt.Right);
      ]
  in
  let rows = ref [] in
  let digests_equal = ref true in
  let speedup4_min = ref infinity in
  List.iter
    (fun (label, seq, par) ->
      let expected = seq () in
      let t_seq = wall seq in
      let timed =
        List.map
          (fun (d, pool) ->
            match par pool with
            | None ->
              Printf.printf "!! %s: no parallel path at %d domains\n" label d;
              digests_equal := false;
              (d, infinity)
            | Some (got, _) ->
              if not (Bat.equal expected got) then begin
                Printf.printf "!! %s: parallel result differs at %d domains\n" label d;
                digests_equal := false
              end;
              let tp =
                wall (fun () ->
                    match par pool with
                    | Some (b, _) -> b
                    | None -> assert false)
              in
              (d, tp))
          pools
      in
      let speedup_at d =
        match List.assoc_opt d timed with Some tp -> t_seq /. tp | None -> 0.0
      in
      speedup4_min := Float.min !speedup4_min (speedup_at 4);
      rows :=
        Json.Obj
          ([ ("operator", Json.Str label); ("sequential_ms", json_ms t_seq) ]
          @ List.concat_map
              (fun (d, tp) ->
                [
                  (Printf.sprintf "par%d_ms" d, json_ms tp);
                  (Printf.sprintf "speedup_%d" d, Json.Float (t_seq /. tp));
                ])
              timed)
        :: !rows;
      Tablefmt.add_row t
        ([ label; ms t_seq ]
        @ List.concat_map
            (fun (d, tp) ->
              [ ms tp; Tablefmt.cell_float ~prec:2 (speedup_at d) ^ "x" ])
            timed))
    workloads;
  List.iter (fun (_, pool) -> Parkernel.shutdown pool) pools;
  Tablefmt.print t;
  record_entry "PARALLEL"
    [
      ("rows", Json.Int n);
      ("cores", Json.Int cores);
      ("digests_equal", Json.Bool !digests_equal);
      ("speedup_4", Json.Float !speedup4_min);
      ("operators", Json.Arr (List.rev !rows));
    ];
  Printf.printf
    "expected shape: parallel results are bitwise equal to sequential at every\n\
     domain count; with >= 4 real cores the 4-domain column wins (this host has\n\
     %d), on fewer cores the overhead column is the honest price of morsels.\n"
    cores

(* {1 BOUND: static resource envelopes vs measured footprints}

   For every docs-workload query, compare Boundcheck's estimated
   resident footprint (and sound peak bound) against the bytes the
   session actually held after execution.  Soundness is asserted per
   query (actual never above the peak); the recorded estimation error
   ratio — max(est/actual, actual/est), always >= 1 — tracks how loose
   the estimates are across PRs. *)

let experiment_bound () =
  section "BOUND: static resource envelopes vs measured footprints";
  let n = if quick then 64 else 256 in
  let m = make_docs ~n in
  let st = Mirror.storage m in
  let tbl =
    Tablefmt.create
      ~title:(Printf.sprintf "static bounds vs measured footprint (%d docs)" n)
      Tablefmt.
        [
          ("query", Left);
          ("est rows", Right);
          ("est bytes", Right);
          ("peak bytes", Right);
          ("actual", Right);
          ("err ratio", Right);
        ]
  in
  let rows =
    List.map
      (fun src ->
        let expr = ok (Parser.parse_expr ~bindings src) in
        let r = ok (Eval.query st expr) in
        let est = r.Eval.bound_est_bytes and actual = r.Eval.actual_bytes in
        (match r.Eval.bound_peak_bytes with
        | Some peak when actual > peak ->
          Printf.printf "BOUND VIOLATION: %s held %d bytes over the sound peak %d\n" src
            actual peak;
          exit 1
        | _ -> ());
        let ratio =
          let e = float_of_int (max 1 est) and a = float_of_int (max 1 actual) in
          if e > a then e /. a else a /. e
        in
        Tablefmt.add_row tbl
          [
            src;
            string_of_int r.Eval.bound_est_rows;
            string_of_int est;
            (match r.Eval.bound_peak_bytes with
            | Some p -> string_of_int p
            | None -> "unbounded");
            string_of_int actual;
            Tablefmt.cell_float ~prec:2 ratio;
          ];
        ( Json.Obj
            [
              ("query", Json.Str src);
              ("est_rows", Json.Int r.Eval.bound_est_rows);
              ("est_bytes", Json.Int est);
              ( "peak_bytes",
                match r.Eval.bound_peak_bytes with Some p -> Json.Int p | None -> Json.Null
              );
              ("actual_bytes", Json.Int actual);
              ("error_ratio", Json.Float ratio);
            ],
          ratio ))
      docs_workload
  in
  print_string (Tablefmt.render tbl);
  let ratios = List.map snd rows in
  let mean = List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios) in
  let worst = List.fold_left max 1.0 ratios in
  Printf.printf
    "estimation error: mean %.2fx, worst %.2fx (soundness asserted per query above)\n" mean
    worst;
  record_entry "BOUND"
    [
      ("docs", Json.Int n);
      ("rows", Json.Arr (List.map fst rows));
      ("mean_error_ratio", Json.Float mean);
      ("max_error_ratio", Json.Float worst);
    ]

(* {1 SERVE: the concurrent serving tier over the docs workload}

   N sessions interleave the six vetted workload queries through
   {!Mirror_serve.Serve}: every session pins a snapshot up front, then
   submits one query per burst; the cooperative scheduler serves the
   bursts round-robin, so the result cache sees the same (version,
   normalized key) from every session after the first.  Per-request
   service time is the wall of the [step] that served it — cache hits
   and misses land in the same distribution, which is exactly the
   shape a client would see.  The correctness claim recorded (and
   enforced by bench/validate.ml) is that every session's concatenated
   result stream is bitwise identical: snapshot isolation plus the
   version-keyed cache may never let interleaving change an answer. *)

module Serve = Mirror_serve.Serve
module Qcache = Mirror_serve.Qcache

let experiment_serve () =
  section "SERVE: concurrent sessions, snapshot reads, result cache";
  let n_docs = if quick then 200 else 800 in
  let n_sessions = 8 in
  let rounds = if quick then 3 else 6 in
  let m = make_docs ~n:n_docs in
  let config = { Serve.default_config with queue_capacity = 4; cache_capacity = 64 } in
  let srv = Serve.local ~config ~bindings m in
  let ok_s = function
    | Ok v -> v
    | Error e ->
      prerr_endline ("bench error: " ^ Serve.error_to_string e);
      exit 1
  in
  let sessions = Array.init n_sessions (fun _ -> ok_s (Serve.open_session srv)) in
  let streams = Array.init n_sessions (fun _ -> Buffer.create 4096) in
  let latencies = ref [] in
  let refusals = ref 0 in
  let requests = ref 0 in
  (* every session reads one frozen snapshot for the whole run *)
  Array.iter (fun s -> ignore (ok_s (Serve.submit srv s Serve.Pin))) sessions;
  Serve.drain srv;
  Array.iter (fun s -> ignore (Serve.replies s)) sessions;
  let t0 = Sys.time () in
  for _ = 1 to rounds do
    List.iter
      (fun q ->
        Array.iter
          (fun s ->
            match Serve.submit srv s (Serve.Query q) with
            | Ok _ -> incr requests
            | Error (Serve.Admission_refused _) -> incr refusals
            | Error e -> ok_s (Error e))
          sessions;
        (* pump the burst to quiescence, timing each served request *)
        let rec pump () =
          let s0 = Sys.time () in
          if Serve.step srv then begin
            latencies := (Sys.time () -. s0) :: !latencies;
            pump ()
          end
        in
        pump ();
        Array.iteri
          (fun i s ->
            List.iter
              (fun (_rid, reply) ->
                match reply with
                | Ok (Serve.Value { value; _ }) ->
                  Buffer.add_string streams.(i) (Value.to_string value);
                  Buffer.add_char streams.(i) '\n'
                | Ok _ -> ()
                | Error e -> ok_s (Error e))
              (Serve.replies s))
          sessions)
      docs_workload
  done;
  let elapsed = Float.max (Sys.time () -. t0) 1e-9 in
  (* provoke queue-overflow shedding on a throwaway session so the
     entry records admission control actually refusing work *)
  let shed = ok_s (Serve.open_session srv) in
  for _ = 1 to config.Serve.queue_capacity + 4 do
    match Serve.submit srv shed (Serve.Query "count(Docs)") with
    | Ok _ -> ()
    | Error (Serve.Admission_refused _) -> incr refusals
    | Error e -> ok_s (Error e)
  done;
  Serve.drain srv;
  ignore (Serve.replies shed);
  Serve.close_session srv shed;
  let digest0 = Digest.string (Buffer.contents streams.(0)) in
  let digests_equal =
    Array.for_all (fun b -> Digest.string (Buffer.contents b) = digest0) streams
  in
  let lat = Array.of_list !latencies in
  let p50 = Mirror_util.Stat.percentile lat 50.0 in
  let p95 = Mirror_util.Stat.percentile lat 95.0 in
  let st = Serve.stats srv in
  let hit_rate = Qcache.hit_rate st.Serve.cache in
  let throughput = Float.of_int !requests /. elapsed in
  Array.iter (fun s -> Serve.close_session srv s) sessions;
  let t =
    Tablefmt.create
      ~title:
        (Printf.sprintf "%d sessions x %d rounds over the %d-query docs workload" n_sessions
           rounds (List.length docs_workload))
      [ ("measure", Tablefmt.Left); ("value", Tablefmt.Right) ]
  in
  Tablefmt.add_row t [ "requests served"; Tablefmt.cell_int !requests ];
  Tablefmt.add_row t [ "throughput (req/s)"; Tablefmt.cell_float ~prec:0 throughput ];
  Tablefmt.add_row t [ "latency p50 (ms)"; ms p50 ];
  Tablefmt.add_row t [ "latency p95 (ms)"; ms p95 ];
  Tablefmt.add_row t [ "cache hit rate"; Tablefmt.cell_float ~prec:3 hit_rate ];
  Tablefmt.add_row t [ "refusals"; Tablefmt.cell_int !refusals ];
  Tablefmt.add_row t [ "digests equal"; (if digests_equal then "yes" else "NO") ];
  Tablefmt.print t;
  if not digests_equal then begin
    print_endline "SERVE: session result streams diverged";
    exit 1
  end;
  record_entry "SERVE"
    [
      ("sessions", Json.Int n_sessions);
      ("requests", Json.Int !requests);
      ("throughput_rps", Json.Float throughput);
      ("p50_ms", json_ms p50);
      ("p95_ms", json_ms p95);
      ("cache_hit_rate", Json.Float hit_rate);
      ("refusals", Json.Int !refusals);
      ("digests_equal", Json.Bool digests_equal);
      ("versions_published", Json.Int st.Serve.versions_published);
      ("batches", Json.Int st.Serve.batches);
    ];
  print_endline
    "expected shape: after the first session's miss every other session\n\
     hits the version-keyed cache (hit rate well above 1/8), p50 sits far\n\
     below p95 (hits vs evaluations), and all eight result streams are\n\
     bitwise identical."

let () =
  Printf.printf "Mirror MMDBMS experiment harness%s\n" (if quick then " (quick mode)" else "");
  vet_workloads ();
  experiment_f1 ();
  experiment_q1 ();
  experiment_e1 ();
  experiment_e2 ();
  experiment_e3 ();
  experiment_e4 ();
  experiment_e5 ();
  experiment_q2_e6 ();
  experiment_recovery ();
  experiment_chaos ();
  experiment_parallel ();
  experiment_bound ();
  experiment_serve ();
  write_bench_json ();
  print_endline "\nall experiments complete."
