(* The Mirror DBMS command-line interface.

   Usage:
     dune exec bin/mirror_cli.exe                 -- interactive session
     dune exec bin/mirror_cli.exe -- -e "PROGRAM" -- evaluate and exit
     dune exec bin/mirror_cli.exe -- --demo 16    -- preload the §5 demo library
     dune exec bin/mirror_cli.exe -- lint         -- static-check the corpus
     dune exec bin/mirror_cli.exe -- lint "QUERY" -- static-check a query
     dune exec bin/mirror_cli.exe -- explain --check "QUERY"

   Inside the shell:
     define NAME as TYPE;      schema definition
     EXPR;                     run a Moa query
     .explain EXPR             show the compiled MIL plan bundle
     .lint EXPR                static-check a query against this database
     .extents                  list extents
     .catalog                  list catalog BATs
     .search TEXT              demo-library dual-coding search
     .help  .quit *)

module Mirror = Mirror_core.Mirror
module Value = Mirror_core.Value
module Eval = Mirror_core.Eval
module Parser = Mirror_core.Parser
module Storage = Mirror_core.Storage
module Optimize = Mirror_core.Optimize
module Flatten = Mirror_core.Flatten
module Plancheck = Mirror_core.Plancheck
module Lintreport = Mirror_core.Lintreport
module Moacheck = Mirror_core.Moacheck
module Moaprop = Mirror_core.Moaprop
module Corpus = Mirror_core.Corpus
module Shape = Mirror_core.Shape
module Milcheck = Mirror_bat.Milcheck
module Milprop = Mirror_bat.Milprop
module Milopt = Mirror_bat.Milopt
module Mil = Mirror_bat.Mil
module Catalog = Mirror_bat.Catalog
module Bat = Mirror_bat.Bat
module Synth = Mirror_mm.Synth
module Prng = Mirror_util.Prng
module Durable = Mirror_store.Durable
module Wal = Mirror_store.Wal

let help_text =
  "commands:\n\
  \  define NAME as TYPE;   define an extent (paper DDL syntax)\n\
  \  EXPR;                  evaluate a Moa query\n\
  \  let NAME = EXPR;       bind an expression (view semantics)\n\
  \  insert into N EXPR;    append one row\n\
  \  delete from N where P; remove matching rows\n\
  \  .explain EXPR          show the flattened MIL plan\n\
  \  .lint EXPR             static-check a query (verifier + lint pass)\n\
  \  .profile EXPR          run with per-operator timing\n\
  \  .trace EXPR            run under a trace and show the span tree\n\
  \  .extents               list defined extents with types and sizes\n\
  \  .catalog               list the physical BATs\n\
  \  .search TEXT           dual-coding search over the demo library\n\
  \  .save DIR  .load DIR   persist / restore the database (extents)\n\
  \  .help                  this text\n\
  \  .quit                  leave"

(* sets/lists of flat tuples render as aligned tables *)
let try_table v =
  let open Mirror_core in
  let rows_of = function
    | Value.VSet rows | Value.Xv { ext = "LIST"; items = rows; _ } -> Some rows
    | _ -> None
  in
  match rows_of v with
  | Some (first :: _ as rows) when List.length rows > 1 -> (
    match first with
    | Value.Tup fields
      when List.for_all (fun (_, fv) -> match fv with Value.Atom _ -> true | _ -> false) fields
      ->
      let labels = List.map fst fields in
      let same_shape row =
        match row with
        | Value.Tup fs ->
          List.length fs = List.length labels
          && List.for_all2 (fun l (l', v) -> l = l' && (match v with Value.Atom _ -> true | _ -> false)) labels fs
        | _ -> false
      in
      if List.for_all same_shape rows then begin
        let t =
          Mirror_util.Tablefmt.create
            (List.map (fun l -> (l, Mirror_util.Tablefmt.Left)) labels)
        in
        List.iter
          (fun row ->
            Mirror_util.Tablefmt.add_row t
              (List.map
                 (fun (_, fv) ->
                   match fv with
                   | Value.Atom a -> Mirror_bat.Atom.to_string a
                   | _ -> assert false)
                 (Value.as_tuple row)))
          rows;
        Mirror_util.Tablefmt.print t;
        true
      end
      else false
    | _ -> false)
  | _ -> false

let print_result = function
  | Mirror.Defined name -> Printf.printf "defined %s\n" name
  | Mirror.Bound name -> Printf.printf "bound %s\n" name
  | Mirror.Inserted name -> Printf.printf "inserted into %s\n" name
  | Mirror.Deleted (name, n) -> Printf.printf "deleted %d row(s) from %s\n" n name
  | Mirror.Evaluated v -> if not (try_table v) then Printf.printf "%s\n" (Value.to_string v)

(* {1 Static analysis (lint / explain --check)} *)

(* All three layers of static checking over one query — the Moa-level
   shape analyzer (Moacheck), the MIL-level envelope lint (Milcheck via
   Plancheck.vet and lint_shape) and the effect-and-aliasing hazard
   lint (Effcheck) — through the shared Lintreport backend.  Returns 0
   when no error-severity problem was found. *)
let lint_query st src =
  let q = Lintreport.check_src st src in
  Lintreport.print_query q;
  if q.Lintreport.failed then 1 else 0

let storage_for db =
  Mirror_core.Bootstrap.ensure ();
  match db with
  | None -> Corpus.storage ()
  | Some dir -> (
    match Mirror_core.Persist.load ~dir with
    | Ok st -> st
    | Error e -> failwith (Printf.sprintf "cannot load database %s: %s" dir e))

let rec rm_rf path =
  match Sys.is_directory path with
  | exception Sys_error _ -> ()
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())

let with_temp_dir f =
  let dir = Filename.temp_file "mirror-durable" ".db" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let report_sweep ~suffix srcs failures =
  Printf.printf "%d quer%s checked%s, %d problem%s\n" (List.length srcs)
    (if List.length srcs = 1 then "y" else "ies")
    suffix failures
    (if failures = 1 then "" else "s");
  if failures = 0 then 0 else 1

(* The same corpus sweep, but against a durable store: build the
   corpus extent through the journaled path, lint, close, reopen (so a
   checkpointed recovery runs) and certify the recovered database. *)
let lint_durable queries =
  Mirror_core.Bootstrap.ensure ();
  with_temp_dir (fun dir ->
      match Durable.open_ ~dir () with
      | Error e ->
        Printf.eprintf "error: cannot create durable store: %s\n" e;
        1
      | Ok (t, _) -> (
        let st = Durable.storage t in
        let built =
          Result.bind (Storage.define st ~name:"R" Corpus.schema) (fun () ->
              Result.map ignore (Storage.load st ~name:"R" Corpus.rows))
        in
        match built with
        | Error e ->
          Durable.close t;
          Printf.eprintf "error: cannot build corpus extent: %s\n" e;
          1
        | Ok () -> (
          let srcs = if queries = [] then Corpus.queries else queries in
          let failures = List.fold_left (fun acc src -> acc + lint_query st src) 0 srcs in
          Durable.close t;
          match Durable.open_ ~dir () with
          | Error e ->
            Printf.eprintf "FAIL  durable reopen: %s\n" e;
            1
          | Ok (t2, _) -> (
            let cert = Durable.certify t2 in
            Durable.close t2;
            match cert with
            | Error e ->
              Printf.printf "FAIL  durable certify: %s\n" e;
              1
            | Ok () -> report_sweep ~suffix:" against a recovered durable store" srcs failures))))

let lint_main db queries durable json =
  if durable then
    if json then begin
      Printf.eprintf "error: --json cannot be combined with --durable\n";
      1
    end
    else lint_durable queries
  else
    match storage_for db with
    | exception Failure e ->
      Printf.eprintf "error: %s\n" e;
      1
    | st ->
      let srcs = if queries = [] then Corpus.queries else queries in
      if json then begin
        let report = Lintreport.sweep st srcs in
        print_endline (Mirror_util.Jsonx.to_string (Lintreport.to_json report));
        if report.Lintreport.failures = 0 then 0 else 1
      end
      else
        let failures = List.fold_left (fun acc src -> acc + lint_query st src) 0 srcs in
        report_sweep ~suffix:"" srcs failures

let explain_main check db src =
  match storage_for db with
  | exception Failure e ->
    Printf.eprintf "error: %s\n" e;
    1
  | st -> (
    match Parser.parse_expr src with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok expr -> (
      match Eval.explain st expr with
      | Error e ->
        Printf.eprintf "error: %s\n" e;
        1
      | Ok plan ->
        print_string plan;
        if not check then 0
        else (
          match Plancheck.vet st expr with
          | Error e ->
            Printf.printf "check: FAIL %s\n" e;
            1
          | Ok () -> (
            match Flatten.compile st (Optimize.rewrite expr) with
            | exception Flatten.Unsupported e ->
              Printf.printf "check: FAIL flatten: %s\n" e;
              1
            | shape ->
              let menv = Moacheck.env_of_storage st in
              let prop, _ = Moacheck.infer menv expr in
              Printf.printf "-- moa envelope: %s\n" (Moaprop.to_string prop);
              let shape = Shape.map Milopt.rewrite shape in
              let env = Plancheck.env_of_storage st in
              List.iteri
                (fun i p ->
                  let prop, _ = Milcheck.infer env p in
                  Printf.printf "-- bat %d infers %s\n" (i + 1) (Milprop.to_string prop))
                (Plancheck.shape_plans shape);
              print_endline "check: ok";
              0))))

let handle_line mref line =
  let m = !mref in
  let line = String.trim line in
  if line = "" then ()
  else if line = ".quit" || line = ".exit" then raise Exit
  else if line = ".help" then print_endline help_text
  else if line = ".extents" then
    List.iter
      (fun name ->
        match Storage.extent_type (Mirror.storage m) name with
        | Some ty ->
          Printf.printf "%-24s %6d rows  %s\n" name
            (Storage.extent_count (Mirror.storage m) name)
            (Mirror_core.Types.to_string ty)
        | None -> ())
      (Storage.extents (Mirror.storage m))
  else if line = ".catalog" then
    List.iter
      (fun name ->
        let b = Catalog.get (Storage.catalog (Mirror.storage m)) name in
        Printf.printf "%-40s %8d rows  (%s -> %s)\n" name (Bat.count b)
          (Mirror_bat.Atom.ty_name (Bat.hty b))
          (Mirror_bat.Atom.ty_name (Bat.tty b)))
      (Catalog.names (Storage.catalog (Mirror.storage m)))
  else if Mirror_util.Stringx.starts_with ~prefix:".save " line then begin
    let dir = String.trim (String.sub line 6 (String.length line - 6)) in
    match Mirror_core.Persist.save (Mirror.storage m) ~dir with
    | Ok () -> Printf.printf "saved to %s\n" dir
    | Error e -> Printf.printf "error: %s\n" e
  end
  else if Mirror_util.Stringx.starts_with ~prefix:".load " line then begin
    let dir = String.trim (String.sub line 6 (String.length line - 6)) in
    match Mirror_core.Persist.load ~dir with
    | Ok st ->
      mref := Mirror.of_storage st;
      Printf.printf "loaded %d extent(s) from %s\n"
        (List.length (Storage.extents st)) dir
    | Error e -> Printf.printf "error: %s\n" e
  end
  else if Mirror_util.Stringx.starts_with ~prefix:".profile " line then begin
    let src = String.sub line 9 (String.length line - 9) in
    match
      Result.bind (Parser.parse_expr src) (fun e -> Eval.profile (Mirror.storage m) e)
    with
    | Ok rows ->
      List.iter
        (fun (op, t, n) -> Printf.printf "%-28s %9.3f ms  x%d\n" op (1000.0 *. t) n)
        rows
    | Error e -> Printf.printf "error: %s\n" e
  end
  else if Mirror_util.Stringx.starts_with ~prefix:".trace " line then begin
    let src = String.sub line 7 (String.length line - 7) in
    match
      Result.bind (Parser.parse_expr src) (fun e ->
          Eval.explain_analyze (Mirror.storage m) e)
    with
    | Ok text -> print_string text
    | Error e -> Printf.printf "error: %s\n" e
  end
  else if Mirror_util.Stringx.starts_with ~prefix:".lint " line then begin
    let src = String.trim (String.sub line 6 (String.length line - 6)) in
    ignore (lint_query (Mirror.storage m) src)
  end
  else if Mirror_util.Stringx.starts_with ~prefix:".explain " line then begin
    let src = String.sub line 9 (String.length line - 9) in
    match
      Result.bind (Parser.parse_expr src) (fun e -> Eval.explain (Mirror.storage m) e)
    with
    | Ok plan -> print_endline plan
    | Error e -> Printf.printf "error: %s\n" e
  end
  else if Mirror_util.Stringx.starts_with ~prefix:".search " line then begin
    let text = String.sub line 8 (String.length line - 8) in
    if Mirror.library_size m = 0 then
      print_endline "no demo library loaded; start with --demo N"
    else
      match Mirror.search m ~limit:8 text with
      | Ok hits ->
        List.iteri (fun i (url, s) -> Printf.printf "%d. %-14s %.4f\n" (i + 1) url s) hits
      | Error e -> Printf.printf "error: %s\n" e
  end
  else
    match Mirror.exec_program m line with
    | Ok outcomes -> List.iter print_result outcomes
    | Error e -> Printf.printf "error: %s\n" e

let load_demo ?journal m ~seed ~n =
  Printf.printf "building demo library (%d synthetic images)...\n%!" n;
  let scenes = Synth.corpus (Prng.create seed) ~n ~width:48 ~height:48 () in
  match Mirror.build_image_library m ?journal ~scenes () with
  | Ok report ->
    let open Mirror_daemon in
    Printf.printf "pipeline done: %d daemons, %d rounds, %d dead letters\n"
      (List.length report.Orchestrator.stats)
      report.Orchestrator.rounds
      (List.length report.Orchestrator.dead_letters);
    if not report.Orchestrator.quiescent then
      Printf.printf "NOT QUIESCENT: %d message(s) still pending\n"
        report.Orchestrator.pending;
    if report.Orchestrator.degraded <> [] then
      Printf.printf "DEGRADED: %s\n" (String.concat ", " report.Orchestrator.degraded)
  | Error e -> Printf.printf "demo build failed: %s\n" e

let repl m =
  let mref = ref m in
  print_endline "Mirror DBMS shell — .help for commands";
  try
    while true do
      print_string "mirror> ";
      match read_line () with
      | line -> ( try handle_line mref line with Failure e -> Printf.printf "error: %s\n" e)
      | exception End_of_file -> raise Exit
    done
  with Exit -> print_endline "bye"

let describe_recovery (r : Durable.recovery) =
  if r.Durable.replayed > 0 then
    Printf.printf "recovered: %d log record(s) replayed%s\n" r.Durable.replayed
      (match r.Durable.wal_end with Wal.Torn _ -> " (torn tail discarded)" | _ -> "");
  match r.Durable.wal_end with
  | Wal.Torn msg -> Printf.printf "torn write detected: %s\n" msg
  | Wal.Clean | Wal.Corrupt _ -> ()

let run_session ?durable eval_opt demo seed =
  let finish, m, journal =
    match durable with
    | None -> ((fun code -> code), Mirror.create (), None)
    | Some dir -> (
      match Durable.open_ ~dir () with
      | Error e -> failwith (Printf.sprintf "cannot open durable store %s: %s" dir e)
      | Ok (t, r) ->
        describe_recovery r;
        ( (fun code ->
            Durable.close t;
            code),
          Durable.mirror t,
          Some (Durable.store_journal t) ))
  in
  if demo > 0 then load_demo ?journal m ~seed ~n:demo;
  match eval_opt with
  | Some program -> (
    match Mirror.exec_program m program with
    | Ok outcomes ->
      List.iter print_result outcomes;
      finish 0
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      finish 1)
  | None ->
    repl m;
    finish 0

let main eval_opt demo seed durable =
  match run_session ?durable eval_opt demo seed with
  | code -> code
  | exception Failure e ->
    Printf.eprintf "error: %s\n" e;
    1

(* {1 wal subcommands} *)

let print_status (s : Durable.status) =
  Printf.printf "snapshot         %s (checkpoint LSN %d)\n" s.Durable.snapshot
    s.Durable.checkpoint_lsn;
  Printf.printf "next LSN         %d\n" s.Durable.next_lsn;
  Printf.printf "since checkpoint %d record(s)\n" s.Durable.since_checkpoint;
  Printf.printf "log              %d segment(s), %d byte(s)\n" s.Durable.segments
    s.Durable.log_bytes;
  if s.Durable.wal_appends > 0 then
    Printf.printf "group commit     %d append(s), %d fsync(s), %d batch(es), %.2f fsync/commit\n"
      s.Durable.wal_appends s.Durable.wal_fsyncs s.Durable.wal_batches
      s.Durable.fsyncs_per_commit;
  match s.Durable.last_error with
  | None -> ()
  | Some e -> Printf.printf "last error       %s\n" e

let wal_status_main dir =
  match Durable.inspect ~dir with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok (s, end_) -> (
    print_status s;
    match end_ with
    | Wal.Clean ->
      print_endline "tail             clean";
      0
    | Wal.Torn msg ->
      Printf.printf "tail             torn — %s (recoverable)\n" msg;
      0
    | Wal.Corrupt msg ->
      Printf.printf "tail             CORRUPT — %s\n" msg;
      1)

let wal_checkpoint_main dir =
  match Durable.open_ ~dir () with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok (t, r) -> (
    describe_recovery r;
    match Durable.checkpoint t with
    | Error e ->
      Durable.close t;
      Printf.eprintf "error: checkpoint failed: %s\n" e;
      1
    | Ok () ->
      print_status (Durable.status t);
      Durable.close t;
      0)

let wal_recover_main dir =
  match Durable.open_ ~dir () with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok (t, r) -> (
    Printf.printf "replayed %d log record(s)%s\n" r.Durable.replayed
      (match r.Durable.wal_end with
      | Wal.Torn msg -> Printf.sprintf "; torn tail discarded (%s)" msg
      | _ -> "");
    let cert = Durable.certify t in
    print_status (Durable.status t);
    Durable.close t;
    match cert with
    | Ok () ->
      print_endline "certified: flattened and naive evaluation agree on every extent";
      0
    | Error e ->
      Printf.printf "certify FAILED: %s\n" e;
      1)

open Cmdliner

let domains_arg =
  let doc =
    "Size of the domain pool for morsel-parallel operator execution (1 = fully \
     sequential, capped at 64).  Only plan partitions the effect analysis proves \
     safe run parallel; results are identical at any setting."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

(* evaluates before the command body via [$]-application order, so the
   default pool is sized when the command runs *)
let domains_term =
  Term.(const (fun n -> Mirror_bat.Parkernel.set_domains n) $ domains_arg)

let eval_arg =
  let doc = "Evaluate $(docv) (a ;-separated Moa program) and exit." in
  Arg.(value & opt (some string) None & info [ "e"; "eval" ] ~docv:"PROGRAM" ~doc)

let demo_arg =
  let doc = "Preload the section-5 demo library with $(docv) synthetic images." in
  Arg.(value & opt int 0 & info [ "demo" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed for the demo corpus." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let durable_arg =
  let doc =
    "Run against the durable store in $(docv): recover it on open, journal every \
     update to its write-ahead log, checkpoint on exit."
  in
  Arg.(value & opt (some string) None & info [ "durable" ] ~docv:"DIR" ~doc)

let lint_durable_arg =
  let doc =
    "Sweep the corpus against a durable store in a temporary directory: build the \
     extent through the write-ahead log, lint, then reopen and certify the recovered \
     database."
  in
  Arg.(value & flag & info [ "durable" ] ~doc)

let wal_dir_arg =
  let doc = "The durable database directory." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)

let db_arg =
  let doc = "Analyse against the database persisted in $(docv) (defaults to the built-in corpus extent)." in
  Arg.(value & opt (some string) None & info [ "db" ] ~docv:"DIR" ~doc)

let lint_queries_arg =
  let doc = "Queries to check; with none given, the whole built-in corpus is swept." in
  Arg.(value & pos_all string [] & info [] ~docv:"QUERY" ~doc)

let explain_query_arg =
  let doc = "The query to explain." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)

let check_arg =
  let doc = "Also verify the bundle, run the differential checker and print each BAT's inferred property envelope." in
  Arg.(value & flag & info [ "check" ] ~doc)

let lint_json_arg =
  let doc =
    "Emit one machine-readable JSON report (schema mirror-lint/v2) with every \
     diagnostic of all four analyzer layers instead of text lines."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let lint_cmd =
  let doc =
    "statically check Moa queries (plan verifier + lint + effect analysis + resource bounds)"
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const (fun () -> lint_main)
      $ domains_term $ db_arg $ lint_queries_arg $ lint_durable_arg $ lint_json_arg)

(* {1 wal command group} *)

let wal_status_cmd =
  let doc = "inspect a durable directory read-only: checkpoint, LSNs, log tail state" in
  Cmd.v (Cmd.info "status" ~doc) Term.(const wal_status_main $ wal_dir_arg)

let wal_checkpoint_cmd =
  let doc = "open (recovering if needed), snapshot and truncate the log" in
  Cmd.v (Cmd.info "checkpoint" ~doc) Term.(const wal_checkpoint_main $ wal_dir_arg)

let wal_recover_cmd =
  let doc = "recover a durable directory and certify the result (flattened vs naive)" in
  Cmd.v (Cmd.info "recover" ~doc) Term.(const wal_recover_main $ wal_dir_arg)

let wal_cmd =
  let doc = "durable-store utilities (subcommands: status, checkpoint, recover)" in
  Cmd.group (Cmd.info "wal" ~doc) [ wal_status_cmd; wal_checkpoint_cmd; wal_recover_cmd ]

(* {1 Daemon topic-graph lint} *)

(* The standard pipeline's external contract: topics the orchestrator
   (or a query client) publishes into the daemon set, and topics it
   consumes as progress/output signals. *)
let pipeline_roots = [ "image.new"; "annotation.new"; "collection.complete"; "query.formulate" ]
let pipeline_sinks = [ "features.ready"; "annotation.indexed"; "clustering.done"; "thesaurus.ready" ]

let daemons_lint_main () =
  let daemons = Mirror_daemon.Standard.all () in
  let diags =
    Mirror_daemon.Daemonlint.lint ~roots:pipeline_roots ~sinks:pipeline_sinks daemons
  in
  List.iter (fun d -> print_endline (Mirror_daemon.Daemonlint.diag_to_string d)) diags;
  let errs = Mirror_daemon.Daemonlint.errors diags in
  Printf.printf "%d daemon(s) checked, %d problem(s)\n" (List.length daemons)
    (List.length errs);
  if errs = [] then 0 else 1

let daemons_lint_cmd =
  let doc = "statically check the standard daemon set's topic graph" in
  Cmd.v (Cmd.info "lint" ~doc) Term.(const daemons_lint_main $ const ())

(* {2 daemons health / deadletters / redeliver}

   Run the §5 ingest pipeline (optionally with injected faults) under
   the supervision fabric and report on it.  The virtual clock makes
   the whole exercise instantaneous and deterministic. *)

let parse_flaky spec =
  match String.index_opt spec ':' with
  | None -> failwith (Printf.sprintf "bad --flaky %S (expected NAME:RATE)" spec)
  | Some i -> (
    let name = String.sub spec 0 i in
    let rate = String.sub spec (i + 1) (String.length spec - i - 1) in
    match float_of_string_opt rate with
    | Some r when r >= 0.0 && r <= 1.0 -> (name, r)
    | _ -> failwith (Printf.sprintf "bad --flaky rate %S (expected 0..1)" rate))

(* Build the faulted pipeline and run it; returns the orchestrator,
   the report and the heal switches of the broken daemons. *)
let run_faulted_pipeline ~images ~seed ~broken ~flaky =
  let open Mirror_daemon in
  let flaky = List.map parse_flaky flaky in
  let g = Prng.create (seed + 1) in
  let known = List.map (fun (d : Daemon.t) -> d.Daemon.name) (Standard.all ()) in
  List.iter
    (fun n ->
      if not (List.mem n known) then failwith (Printf.sprintf "unknown daemon %S" n))
    (broken @ List.map fst flaky);
  let heals = ref [] in
  let daemons =
    List.map
      (fun (d : Daemon.t) ->
        if List.mem d.Daemon.name broken then begin
          let d', heal = Faults.breakable d in
          heals := heal :: !heals;
          d'
        end
        else
          match List.assoc_opt d.Daemon.name flaky with
          | Some rate -> Faults.flaky (Prng.split g) ~rate d
          | None -> d)
      (Standard.all ())
  in
  let orch = Orchestrator.create ~daemons () in
  let scenes = Synth.corpus (Prng.create seed) ~n:images ~width:32 ~height:32 () in
  Array.iteri
    (fun i s ->
      let url = Printf.sprintf "img://%d" i in
      let annotation = Option.map (String.concat " ") s.Synth.caption in
      Orchestrator.ingest_image orch ~doc:i ~url ?annotation s.Synth.image)
    scenes;
  Orchestrator.complete_collection orch;
  let report = Orchestrator.run orch in
  (orch, report, !heals)

let print_pipeline_summary (report : Mirror_daemon.Orchestrator.report) =
  let open Mirror_daemon in
  Printf.printf "rounds %d, quiescent %b, pending %d, dead letters %d\n"
    report.Orchestrator.rounds report.Orchestrator.quiescent report.Orchestrator.pending
    (List.length report.Orchestrator.dead_letters);
  if report.Orchestrator.degraded <> [] then
    Printf.printf "degraded: %s\n" (String.concat ", " report.Orchestrator.degraded)

let daemons_health_main images seed broken flaky =
  let open Mirror_daemon in
  match run_faulted_pipeline ~images ~seed ~broken ~flaky with
  | exception Failure e ->
    Printf.eprintf "error: %s\n" e;
    1
  | orch, report, _ ->
    let sup = Orchestrator.supervisor orch in
    let bus = (Orchestrator.ctx orch).Daemon.bus in
    let t =
      Mirror_util.Tablefmt.create
        [
          ("daemon", Mirror_util.Tablefmt.Left);
          ("breaker", Mirror_util.Tablefmt.Left);
          ("handled", Mirror_util.Tablefmt.Right);
          ("failures", Mirror_util.Tablefmt.Right);
          ("queued", Mirror_util.Tablefmt.Right);
          ("dead", Mirror_util.Tablefmt.Right);
        ]
    in
    List.iter
      (fun (s : Orchestrator.daemon_stats) ->
        let name = s.Orchestrator.name in
        Mirror_util.Tablefmt.add_row t
          [
            name;
            Supervisor.state_to_string (Supervisor.state sup name);
            string_of_int s.Orchestrator.handled;
            string_of_int s.Orchestrator.failures;
            string_of_int (Bus.pending_for bus ~name);
            string_of_int
              (List.length
                 (List.filter
                    (fun (e : Deadletter.entry) -> String.equal e.Deadletter.daemon name)
                    (Orchestrator.dead_letters orch)));
          ])
      report.Orchestrator.stats;
    Mirror_util.Tablefmt.print t;
    print_pipeline_summary report;
    if report.Orchestrator.quiescent && report.Orchestrator.degraded = [] then 0 else 1

let daemons_deadletters_main images seed broken flaky =
  let open Mirror_daemon in
  match run_faulted_pipeline ~images ~seed ~broken ~flaky with
  | exception Failure e ->
    Printf.eprintf "error: %s\n" e;
    1
  | orch, report, _ ->
    let letters = Orchestrator.dead_letters orch in
    List.iter
      (fun (e : Deadletter.entry) ->
        let m = e.Deadletter.delivery.Bus.message in
        Printf.printf "%-20s %-20s subject %-4d attempts %d  %s\n" e.Deadletter.daemon
          m.Bus.topic m.Bus.subject e.Deadletter.delivery.Bus.attempts
          (Deadletter.cause_to_string e.Deadletter.cause))
      letters;
    Printf.printf "%d dead letter(s)\n" (List.length letters);
    print_pipeline_summary report;
    if letters = [] then 0 else 1

let daemons_redeliver_main images seed broken flaky =
  let open Mirror_daemon in
  match run_faulted_pipeline ~images ~seed ~broken ~flaky with
  | exception Failure e ->
    Printf.eprintf "error: %s\n" e;
    1
  | orch, report, heals ->
    print_pipeline_summary report;
    List.iter (fun heal -> heal true) heals;
    let n = Orchestrator.redeliver orch in
    Printf.printf "healed %d daemon(s), redelivered %d message(s)\n" (List.length heals) n;
    let report2 = Orchestrator.run orch in
    print_pipeline_summary report2;
    let left = List.length (Orchestrator.dead_letters orch) in
    Printf.printf "%d dead letter(s) remaining\n" left;
    if report2.Orchestrator.quiescent && left = 0 then 0 else 1

let images_arg =
  let doc = "Synthetic images to ingest." in
  Arg.(value & opt int 6 & info [ "images" ] ~docv:"N" ~doc)

let fault_seed_arg =
  let doc = "Random seed for the corpus and fault injection." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let break_arg =
  let doc = "Break daemon $(docv) (always fails) for the run; repeatable." in
  Arg.(value & opt_all string [] & info [ "break" ] ~docv:"NAME" ~doc)

let flaky_arg =
  let doc = "Make daemon NAME fail with probability RATE; repeatable." in
  Arg.(value & opt_all string [] & info [ "flaky" ] ~docv:"NAME:RATE" ~doc)

let daemons_health_cmd =
  let doc = "run the ingest pipeline under supervision and show per-daemon health" in
  Cmd.v (Cmd.info "health" ~doc)
    Term.(const daemons_health_main $ images_arg $ fault_seed_arg $ break_arg $ flaky_arg)

let daemons_deadletters_cmd =
  let doc = "run the ingest pipeline and list the dead-letter queue with causes" in
  Cmd.v (Cmd.info "deadletters" ~doc)
    Term.(const daemons_deadletters_main $ images_arg $ fault_seed_arg $ break_arg $ flaky_arg)

let daemons_redeliver_cmd =
  let doc = "run with faults, heal the broken daemons, replay the dead letters" in
  Cmd.v (Cmd.info "redeliver" ~doc)
    Term.(const daemons_redeliver_main $ images_arg $ fault_seed_arg $ break_arg $ flaky_arg)

let daemons_cmd =
  let doc = "daemon utilities (subcommands: lint, health, deadletters, redeliver)" in
  Cmd.group (Cmd.info "daemons" ~doc)
    [ daemons_lint_cmd; daemons_health_cmd; daemons_deadletters_cmd; daemons_redeliver_cmd ]

let max_bytes_arg =
  let doc =
    "Admission budget in bytes: refuse any plan whose static peak-footprint \
     envelope exceeds the budget (or is unbounded) before evaluating it."
  in
  Arg.(value & opt (some int) None & info [ "max-bytes" ] ~docv:"BYTES" ~doc)

let explain_analyze_main db src max_bytes =
  match storage_for db with
  | exception Failure e ->
    Printf.eprintf "error: %s\n" e;
    1
  | st -> (
    match Parser.parse_expr src with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok expr -> (
      match Eval.explain_analyze ?max_bytes st expr with
      | Error e ->
        Printf.eprintf "error: %s\n" e;
        1
      | Ok text ->
        print_string text;
        0))

let explain_analyze_cmd =
  let doc =
    "execute a query under a trace: span tree with per-operator time, rows, memo hits and \
     the static resource-bound envelope vs actual footprint"
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(
      const (fun () -> explain_analyze_main)
      $ domains_term $ db_arg $ explain_query_arg $ max_bytes_arg)

let explain_cmd =
  let doc = "show the compiled MIL plan bundle of a query (subcommand: analyze)" in
  Cmd.group
    ~default:
      Term.(const (fun () -> explain_main) $ domains_term $ check_arg $ db_arg $ explain_query_arg)
    (Cmd.info "explain" ~doc)
    [ explain_analyze_cmd ]

(* {1 serve} *)

let serve_main socket durable self_test demo seed max_sessions queue cache commit_batch
    max_bytes =
  let module Serve = Mirror_serve.Serve in
  if self_test then (
    match Serve.self_test () with
    | Ok () ->
      print_endline
        "serve self-test: OK (snapshot isolation, result cache, admission control, breaker)";
      0
    | Error e ->
      Printf.eprintf "serve self-test FAILED: %s\n" e;
      1)
  else
    match socket with
    | None ->
      Printf.eprintf "error: serve needs --socket PATH (or --self-test)\n";
      1
    | Some socket -> (
      let config =
        {
          Serve.default_config with
          Serve.max_sessions;
          Serve.queue_capacity = queue;
          Serve.cache_capacity = cache;
          Serve.commit_batch;
          Serve.max_bytes;
        }
      in
      let finish, m, dur =
        match durable with
        | None -> ((fun code -> code), Mirror.create (), None)
        | Some dir -> (
          match Durable.open_ ~dir () with
          | Error e ->
            Printf.eprintf "error: cannot open durable store %s: %s\n" dir e;
            exit 1
          | Ok (t, r) ->
            describe_recovery r;
            ((fun code -> Durable.close t; code), Durable.mirror t, Some t))
      in
      if demo > 0 then load_demo ?journal:(Option.map Durable.store_journal dur) m ~seed ~n:demo;
      let stop = ref false in
      let on_signal = Sys.Signal_handle (fun (_ : int) -> stop := true) in
      Sys.set_signal Sys.sigint on_signal;
      Sys.set_signal Sys.sigterm on_signal;
      Printf.printf "serving on %s (ctrl-C to stop)\n%!" socket;
      match Mirror_serve.Server.run ~config ?durable:dur ~stop:(fun () -> !stop) ~socket m with
      | Ok () ->
        print_endline "serve: stopped";
        finish 0
      | Error e ->
        Printf.eprintf "error: %s\n" e;
        finish 1)

let socket_arg =
  let doc = "Listen on the Unix socket at $(docv) (one connection = one session)." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_self_test_arg =
  let doc =
    "Run the in-process serving self-test (snapshot isolation across a commit, cache \
     hits via query normalization, queue/budget shedding, breaker trip and recovery) \
     and exit."
  in
  Arg.(value & flag & info [ "self-test" ] ~doc)

let max_sessions_arg =
  let doc = "Concurrent session cap; further connections are refused (admission)." in
  Arg.(value & opt int 64 & info [ "max-sessions" ] ~docv:"N" ~doc)

let queue_arg =
  let doc = "Pending-request bound per session; overflow is refused, never queued." in
  Arg.(value & opt int 32 & info [ "queue" ] ~docv:"N" ~doc)

let cache_capacity_arg =
  let doc = "Result-cache entries (LRU, keyed by version and canonical query)." in
  Arg.(value & opt int 256 & info [ "cache" ] ~docv:"N" ~doc)

let commit_batch_arg =
  let doc =
    "Group-commit batch: writes from all sessions commit together (one fsync, one new \
     snapshot version) every $(docv) writes or when the server goes idle."
  in
  Arg.(value & opt int 8 & info [ "commit-batch" ] ~docv:"N" ~doc)

let serve_cmd =
  let doc =
    "serve many concurrent sessions over one database: snapshot-isolated reads, a \
     normalized query/result cache, group-committed writes and admission control"
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const (fun () -> serve_main)
      $ domains_term $ socket_arg $ durable_arg $ serve_self_test_arg $ demo_arg $ seed_arg
      $ max_sessions_arg $ queue_arg $ cache_capacity_arg $ commit_batch_arg $ max_bytes_arg)

let cmd =
  let doc = "the Mirror multimedia DBMS shell" in
  let info = Cmd.info "mirror" ~doc in
  Cmd.group
    ~default:
      Term.(const (fun () -> main) $ domains_term $ eval_arg $ demo_arg $ seed_arg $ durable_arg)
    info
    [ lint_cmd; explain_cmd; daemons_cmd; wal_cmd; serve_cmd ]

let () = exit (Cmd.eval' cmd)
