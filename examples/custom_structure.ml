(* Structural extensibility, end to end (§2: "new structures can be
   added to the system ... A more interesting use for structural
   extensibility is however the definition of domain specific
   structures").

   This example registers a user-defined VEC structure — a raw feature
   vector — through the public Extension registry and builds a
   Viper-style query-by-example image search on top of it: images are
   represented by their RGB-histogram vectors and ranked by Euclidean
   distance to the query image's vector.  The distance operator
   [vdist] is compiled entirely from *generic* kernel operators
   (joins, element-wise calculations, grouped sums): no new physical
   operator is needed, exactly the paper's point about the binary
   relational model as a compilation target.

   Run with:  dune exec examples/custom_structure.exe *)

module Atom = Mirror_bat.Atom
module Bat = Mirror_bat.Bat
module Mil = Mirror_bat.Mil
module Column = Mirror_bat.Column
module Types = Mirror_core.Types
module Value = Mirror_core.Value
module Expr = Mirror_core.Expr
module Shape = Mirror_core.Shape
module Extension = Mirror_core.Extension
module Mirror = Mirror_core.Mirror
module Naive = Mirror_core.Naive
module Eval = Mirror_core.Eval
module Prng = Mirror_util.Prng
module Synth = Mirror_mm.Synth
module Segment = Mirror_mm.Segment
module Histogram = Mirror_mm.Histogram

let ok = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("error: " ^ e);
    exit 1

(* {1 The VEC extension} *)

let vec_value arr = Value.Xv { ext = "VEC"; meta = []; items = Array.to_list (Array.map Value.flt arr) }

let vec_floats = function
  | Value.Xv { ext = "VEC"; items; _ } ->
    Array.of_list (List.map (fun v -> Atom.as_float (Value.as_atom v)) items)
  | _ -> failwith "not a VEC"

let parse_vector_literal s =
  Mirror_util.Stringx.split_on (fun c -> c = ' ' || c = ',') s
  |> List.map float_of_string
  |> Array.of_list

let vector_literal arr =
  String.concat " " (Array.to_list (Array.map (Printf.sprintf "%.17g") arr))

module VEC = struct
  let name = "VEC"
  let arity = 0
  let check_type = function [] -> Ok () | _ -> Error "VEC takes no type parameters"
  let ops = [ "vdist"; "vnorm" ]

  let op_type ~op ~args =
    match (op, args) with
    | "vdist", [ Types.Xt ("VEC", _); Types.Atomic Atom.TStr ] -> Ok (Types.Atomic Atom.TFlt)
    | "vnorm", [ Types.Xt ("VEC", _) ] -> Ok (Types.Atomic Atom.TFlt)
    | _ -> Error (op ^ ": bad operands")

  let op_eval _env ~op ~args =
    match (op, args) with
    | "vdist", [ self; Value.Atom (Atom.Str lit) ] ->
      let v = vec_floats self and q = parse_vector_literal lit in
      let acc = ref 0.0 in
      Array.iteri
        (fun i qi ->
          let xi = if i < Array.length v then v.(i) else 0.0 in
          acc := !acc +. ((xi -. qi) *. (xi -. qi)))
        q;
      (* dimensions beyond the query contribute their square *)
      Array.iteri (fun i xi -> if i >= Array.length q then acc := !acc +. (xi *. xi)) v;
      Value.flt !acc
    | "vnorm", [ self ] ->
      let v = vec_floats self in
      Value.flt (sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0.0 v))
    | _ -> failwith (op ^ ": bad operands")

  (* flattened representation: entry -> ctx, entry -> dim, entry -> value *)
  let bundle bats = Shape.Xstruct { ext = name; meta = []; bats; subs = [] }

  let op_flatten env ~op ~arg_tys:_ ~raw ~args =
    match (op, args) with
    | "vdist", [ Shape.Xstruct { ext = "VEC"; bats = [ link; dim; value ]; _ }; _ ] -> (
      match raw with
      | [ _; Expr.Lit (Value.Atom (Atom.Str lit), _) ] ->
        let q = parse_vector_literal lit in
        (* the query vector as a literal BAT dim -> q_d *)
        let qbat =
          Mil.Lit
            {
              hty = Atom.TInt;
              tty = Atom.TFlt;
              pairs = Array.to_list (Array.mapi (fun i x -> (Atom.Int i, Atom.Flt x)) q);
            }
        in
        (* (x_d - q_d)^2 per entry, missing query dims default to 0 *)
        let qs = Mil.LeftOuterJoin (dim, qbat, Atom.Flt 0.0) in
        let diff = Mil.Calc2 (Bat.Sub, value, qs) in
        let sq = Mil.Calc2 (Bat.Mul, diff, diff) in
        let per_ctx = Mil.GroupAggr (Bat.Sum, Mil.Join (Mil.Reverse link, sq)) in
        (* query dims with no stored entry contribute q_d^2: constant
           per context = |q|^2 - sum over stored dims of q_d^2 ... for
           simplicity we require stored vectors to cover the query's
           dimensionality, which [materialize] guarantees for
           equal-width vectors (the common case for one feature space). *)
        Shape.Atomic (Mil.LeftOuterJoin (env.Extension.dom, per_ctx, Atom.Flt 0.0))
      | _ -> failwith "vdist: query vector must be a string literal")
    | "vnorm", [ Shape.Xstruct { ext = "VEC"; bats = [ link; _dim; value ]; _ } ] ->
      let sq = Mil.Calc2 (Bat.Mul, value, value) in
      let per_ctx = Mil.GroupAggr (Bat.Sum, Mil.Join (Mil.Reverse link, sq)) in
      Shape.Atomic (Mil.Calc1 (Bat.Sqrt, Mil.LeftOuterJoin (env.Extension.dom, per_ctx, Atom.Flt 0.0)))
    | _ -> failwith (op ^ ": bad flattened operands")

  let materialize env ~recurse:_ ~path ~ty_args:_ ~dom =
    let total = List.fold_left (fun acc (_, v) -> acc + Array.length (vec_floats v)) 0 dom in
    let base = env.Extension.fresh_store total in
    let next = ref base in
    let hb = Column.Builder.create Atom.TOid in
    let cb = Column.Builder.create Atom.TOid in
    let db = Column.Builder.create Atom.TInt in
    let vb = Column.Builder.create Atom.TFlt in
    List.iter
      (fun (ctx, v) ->
        Array.iteri
          (fun d x ->
            Column.Builder.add_oid hb !next;
            incr next;
            Column.Builder.add_oid cb ctx;
            Column.Builder.add_int db d;
            Column.Builder.add_float vb x)
          (vec_floats v))
      dom;
    let heads = Column.Builder.finish hb in
    let cat = env.Extension.catalog in
    Mirror_bat.Catalog.put cat (path ^ "#in") (Bat.make heads (Column.Builder.finish cb));
    Mirror_bat.Catalog.put cat (path ^ "#dim") (Bat.make heads (Column.Builder.finish db));
    Mirror_bat.Catalog.put cat (path ^ "#val") (Bat.make heads (Column.Builder.finish vb));
    bundle [ Mil.Get (path ^ "#in"); Mil.Get (path ^ "#dim"); Mil.Get (path ^ "#val") ]

  let filter_flat ~recurse:_ ~meta:_ ~bats ~subs:_ ~survivors =
    match bats with
    | [ link; dim; value ] ->
      let link' = Mil.Reverse (Mil.Semijoin (Mil.Reverse link, survivors)) in
      bundle [ link'; Mil.Semijoin (dim, link'); Mil.Semijoin (value, link') ]
    | _ -> failwith "VEC: malformed bundle"

  let rebase_flat env ~recurse:_ ~meta:_ ~bats ~subs:_ ~m =
    match bats with
    | [ link; dim; value ] ->
      let j = Mil.Join (m, Mil.Reverse link) in
      let base = env.Extension.fresh 0 in
      let link' = Mil.NumberHead (j, base) in
      let m2 = Mil.NumberTail (j, base) in
      bundle [ link'; Mil.Join (m2, dim); Mil.Join (m2, value) ]
    | _ -> failwith "VEC: malformed bundle"

  let reify ~lookup ~recurse:_ ~meta:_ ~bats ~subs:_ ~ctx =
    match bats with
    | [ link; dim; value ] ->
      let link_b = lookup link and dim_b = lookup dim and value_b = lookup value in
      let dims = Hashtbl.create 16 and vals = Hashtbl.create 16 in
      Bat.iter (fun o d -> Hashtbl.replace dims (Atom.as_oid o) (Atom.as_int d)) dim_b;
      Bat.iter (fun o x -> Hashtbl.replace vals (Atom.as_oid o) (Atom.as_float x)) value_b;
      let entries = ref [] in
      Bat.iter
        (fun o c ->
          if Atom.as_oid c = ctx then
            match (Hashtbl.find_opt dims (Atom.as_oid o), Hashtbl.find_opt vals (Atom.as_oid o)) with
            | Some d, Some x -> entries := (d, x) :: !entries
            | _ -> ())
        link_b;
      let sorted = List.sort compare !entries in
      vec_value (Array.of_list (List.map snd sorted))
    | _ -> failwith "VEC: malformed bundle"

  let restore _env ~recurse:_ ~path ~ty_args:_ =
    bundle [ Mil.Get (path ^ "#in"); Mil.Get (path ^ "#dim"); Mil.Get (path ^ "#val") ]

  let foreign_ops = []
  let foreign_sigs = []
  let foreign_effects = []
  let foreign_bounds = []

  (* Sound defaults for the Moa-level analyzer: claim nothing about
     operator results or the flattened bundle. *)
  let op_envelope ~op:_ ~args:_ ~ty ~top = top ty

  let prop_flat ~ctx:_ ~prop:_ ~meta:_ ~nbats ~nsubs =
    ( List.init nbats (fun _ -> None),
      List.init nsubs (fun _ -> (Mirror_core.Moaprop.Unknown, Mirror_bat.Milprop.any_card)) )

  let bind_value ~path:_ ~recurse:_ ~ty_args:_ v = v
end

(* {1 The query-by-example application} *)

let whole img = { Segment.x = 0; y = 0; w = img.Mirror_mm.Image.width; h = img.Mirror_mm.Image.height }

let () =
  Mirror_core.Bootstrap.ensure ();
  Extension.register (module VEC : Extension.S);
  Printf.printf "registered structures: %s\n\n"
    (String.concat ", " (Extension.registered ()));

  (* a small corpus with ground-truth classes *)
  let g = Prng.create 31 in
  let scenes = Synth.corpus g ~n:18 ~width:48 ~height:48 ~annotated_fraction:1.0 () in

  let m = Mirror.create () in
  ok
    (Mirror.define m ~name:"Gallery"
       (Types.Set
          (Types.Tuple
             [
               ("source", Types.Atomic Atom.TStr);
               ("class", Types.Atomic Atom.TStr);
               ("feat", Types.Xt ("VEC", []));
             ])));
  let rows =
    Array.to_list
      (Array.mapi
         (fun i (s : Synth.scene) ->
           let cls = Synth.class_name (List.hd s.Synth.truth).Synth.cls in
           Value.Tup
             [
               ("source", Value.str (Printf.sprintf "img://%d" i));
               ("class", Value.str cls);
               ("feat", vec_value (Histogram.rgb s.Synth.image (whole s.Synth.image)));
             ])
         scenes)
  in
  ignore (ok (Mirror.load m ~name:"Gallery" rows));

  (* query by example: a fresh image of a known class *)
  let example = Synth.scene (Prng.create 99) ~regions:1 () in
  let example_class = Synth.class_name (List.hd example.Synth.truth).Synth.cls in
  let example_palette = Synth.palette_name (List.hd example.Synth.truth).Synth.palette in
  let qvec = Histogram.rgb example.Synth.image (whole example.Synth.image) in
  Printf.printf "query image: class=%s palette=%s (not in the gallery)\n" example_class
    example_palette;

  (* the ranking is ordinary Moa: a user-defined operator composes with
     tuple construction, sorting and top-k like any built-in *)
  let ranked =
    Expr.ExtOp
      {
        op = "take";
        args =
          [
            Expr.ExtOp
              {
                op = "tolist";
                args =
                  [
                    Expr.Map
                      {
                        v = "x";
                        body =
                          Expr.Tuple
                            [
                              ("source", Expr.Field (Expr.Var "x", "source"));
                              ("class", Expr.Field (Expr.Var "x", "class"));
                              ( "d",
                                Expr.ExtOp
                                  {
                                    op = "vdist";
                                    args =
                                      [
                                        Expr.Field (Expr.Var "x", "feat");
                                        Expr.lit_str (vector_literal qvec);
                                      ];
                                  } );
                            ];
                        src = Expr.Extent "Gallery";
                      };
                    Expr.lit_str "d";
                  ];
              };
            Expr.lit_int 5;
          ];
      }
  in
  (* both evaluators agree on the user-defined structure *)
  let naive = Naive.eval (Mirror.storage m) ranked in
  let flat = ok (Eval.query_value (Mirror.storage m) ranked) in
  Printf.printf "evaluators agree: %b\n\n" (Value.equal naive flat);

  print_endline "nearest gallery images by RGB-histogram distance:";
  (match flat with
  | Value.Xv { ext = "LIST"; items; _ } ->
    List.iteri
      (fun i item ->
        Printf.printf "  %d. %-10s class=%-9s d=%.4f\n" (i + 1)
          (Atom.as_string (Value.as_atom (Value.field_exn item "source")))
          (Atom.as_string (Value.as_atom (Value.field_exn item "class")))
          (Atom.as_float (Value.as_atom (Value.field_exn item "d"))))
      items
  | v -> print_endline (Value.to_string v));

  (* similarity also composes with relational predicates *)
  let v =
    ok
      (Mirror.run_query m
         (Printf.sprintf
            "count(select[vdist(THIS.feat, '%s') < 0.05](Gallery))"
            (vector_literal qvec)))
  in
  Printf.printf "\ngallery images within distance 0.05: %s\n" (Value.to_string v)
